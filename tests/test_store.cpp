// The tiered result-store spine: the versioned payload codec, DiskStore
// robustness (corruption and version skew must read as misses, never
// crashes or poisoned payloads), TieredStore promotion, and the engine-level
// acceptance bar — result lines byte-identical whether a request is served
// cold (computed), warm (MemoryStore), or after a cold restart (DiskStore).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ddg/generators.hpp"
#include "ddg/kernels.hpp"
#include "service/codec.hpp"
#include "service/engine.hpp"
#include "service/ops/analyze.hpp"
#include "service/ops/reduce.hpp"
#include "service/protocol.hpp"
#include "service/store.hpp"
#include "support/fs.hpp"
#include "support/random.hpp"

#include "test_util.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace rs {
namespace {

using service::AnalysisEngine;
using service::CacheKey;
using service::DiskStore;
using service::EngineConfig;
using service::MemoryStore;
using service::Request;
using service::Response;
using service::ResultPayload;
using service::StoreTier;
using service::TieredStore;
using service::TypeAnalysis;
using service::TypeReduce;

/// Fresh per-test scratch directory under the system temp dir.
std::string fresh_dir(const std::string& name) {
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  const auto p = std::filesystem::temp_directory_path() /
                 ("rs_store_" + name + "_" + std::to_string(pid));
  std::filesystem::remove_all(p);
  std::filesystem::create_directories(p);
  return p.string();
}

ResultPayload sample_analyze_payload() {
  ResultPayload p;
  p.op = &service::analyze_operation();
  auto data = std::make_shared<service::AnalyzeData>();
  data->per_type.push_back(TypeAnalysis{0, 12, 5, true});
  data->per_type.push_back(TypeAnalysis{1, 3, 2, false});
  p.data = std::move(data);
  p.stats.nodes = 123;
  p.stats.prunes = 45;
  p.stats.simplex_iterations = 6;
  p.stats.refine_passes = 7;
  p.stats.solves = 8;
  p.stats.stop = support::StopCause::LimitHit;
  return p;
}

ResultPayload sample_reduce_payload() {
  ResultPayload p;
  p.op = &service::reduce_operation();
  p.success = false;
  auto data = std::make_shared<service::ReduceData>();
  data->per_type.push_back(
      TypeReduce{0, core::ReduceStatus::Reduced, 4, 3, 12});
  data->per_type.push_back(
      TypeReduce{1, core::ReduceStatus::SpillNeeded, 9, 0, 0});
  p.data = std::move(data);
  p.out_ddg = "ddg x types=2\nop a class=ialu lat=1 dr=0 dw=0\n";
  p.error = "type 1 above limit";
  p.stats.nodes = 9;
  p.stats.stop = support::StopCause::Proven;
  return p;
}

void expect_payload_eq(const ResultPayload& a, const ResultPayload& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.out_ddg, b.out_ddg);
  // Stats and op data compared through the codec: encode is deterministic
  // and total over every field the renderer reads, so identical encodings
  // (and renderings) mean identical payloads.
  EXPECT_EQ(service::encode_payload(a), service::encode_payload(b));
  EXPECT_EQ(service::render_payload_fields(a, true),
            service::render_payload_fields(b, true));
}

// ---------------------------------------------------------------------------
// codec

TEST(Codec, AnalyzePayloadRoundTripsExactly) {
  const ResultPayload p = sample_analyze_payload();
  const std::string text = service::encode_payload(p);
  EXPECT_EQ(text.front(), 'r');  // self-describing header
  EXPECT_NE(text.find("v=1"), std::string::npos);
  const auto back = service::decode_payload(text);
  ASSERT_NE(back, nullptr);
  expect_payload_eq(*back, p);
  // The shared renderer sees no difference, so wire lines cannot either.
  EXPECT_EQ(service::render_payload_fields(*back, true),
            service::render_payload_fields(p, true));
}

TEST(Codec, ReducePayloadRoundTripsExactly) {
  const ResultPayload p = sample_reduce_payload();
  const auto back = service::decode_payload(service::encode_payload(p));
  ASSERT_NE(back, nullptr);
  expect_payload_eq(*back, p);
  EXPECT_EQ(service::render_payload_fields(*back, true),
            service::render_payload_fields(p, true));
}

TEST(Codec, VersionMismatchDecodesToNull) {
  std::string text = service::encode_payload(sample_analyze_payload());
  const std::size_t pos = text.find("v=1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 3, "v=2");
  EXPECT_EQ(service::decode_payload(text), nullptr);
  EXPECT_EQ(service::decode_payload("not an rsres entry at all"), nullptr);
  EXPECT_EQ(service::decode_payload(""), nullptr);
}

TEST(Codec, TruncationAndCorruptionDecodeToNull) {
  const std::string text =
      service::encode_payload(sample_reduce_payload());
  // Every strict prefix is either an incomplete token stream or is missing
  // a declared entry: never a payload, never a crash.
  for (const std::size_t len :
       {std::size_t{1}, std::size_t{5}, text.size() / 4, text.size() / 2,
        text.size() - 10}) {
    EXPECT_EQ(service::decode_payload(text.substr(0, len)), nullptr)
        << "prefix length " << len;
  }
  // Malformed numbers and bad escapes are corruption, not exceptions.
  EXPECT_EQ(service::decode_payload(
                "rsres v=1 ok=1 kind=analyze success=1 stop=proven nodes=zap "
                "prunes=0 simplex=0 refine=0 solves=0 na=0 nr=0\n"),
            nullptr);
  EXPECT_EQ(service::decode_payload(
                "rsres v=1 ok=1 kind=analyze success=1 stop=proven nodes=1 "
                "prunes=0 simplex=0 refine=0 solves=0 na=0 nr=0 ddg=%Z\n"),
            nullptr);
  // Entry-count mismatch: na declares more entries than are present.
  EXPECT_EQ(service::decode_payload(
                "rsres v=1 ok=1 kind=analyze success=1 stop=proven nodes=1 "
                "prunes=0 simplex=0 refine=0 solves=0 na=2 a0=0:1:1:1 nr=0\n"),
            nullptr);
}

TEST(Codec, UnknownKeysAreSkippedForwardCompatibly) {
  // A newer same-version writer may append fields; this reader must ignore
  // them and still reconstruct the payload it understands — that is the
  // forward-compatibility half of the "never a poisoned payload" contract
  // (incompatible changes bump v= and read as a miss instead).
  const ResultPayload p = sample_analyze_payload();
  std::string text = service::encode_payload(p);
  ASSERT_EQ(text.back(), '\n');
  text.pop_back();
  text += " zfuture=hint zextra=42\n";
  const auto back = service::decode_payload(text);
  ASSERT_NE(back, nullptr);
  expect_payload_eq(*back, p);
  // ...but an unknown key with a *malformed* value is still corruption.
  std::string bad = service::encode_payload(p);
  bad.pop_back();
  bad += " zfuture=%G\n";
  EXPECT_EQ(service::decode_payload(bad), nullptr);
}

// ---------------------------------------------------------------------------
// DiskStore

std::shared_ptr<const ResultPayload> shared_payload(const ResultPayload& p) {
  return std::make_shared<ResultPayload>(p);
}

TEST(DiskStoreTest, PutGetRoundTripAndSharding) {
  DiskStore store(DiskStore::Config{fresh_dir("roundtrip")});
  const CacheKey key{0xabcdef0011223344ULL, 0x5566778899aabbccULL};
  const std::string path = store.entry_path(key);
  // Fan-out: <dir>/<first two hex chars>/<hex>.rsres.
  EXPECT_NE(path.find("/ab/"), std::string::npos);
  EXPECT_NE(path.find(key.hex() + ".rsres"), std::string::npos);

  EXPECT_EQ(store.get(key).payload, nullptr);
  store.put(key, shared_payload(sample_reduce_payload()), 100);
  const auto hit = store.get(key);
  ASSERT_NE(hit.payload, nullptr);
  EXPECT_EQ(hit.tier, StoreTier::Disk);
  expect_payload_eq(*hit.payload, sample_reduce_payload());
  const auto st = store.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.insertions, 1u);
  EXPECT_EQ(st.corrupt, 0u);
}

TEST(DiskStoreTest, TruncatedEntryReadsAsMiss) {
  DiskStore store(DiskStore::Config{fresh_dir("truncated")});
  const CacheKey key{1, 2};
  store.put(key, shared_payload(sample_analyze_payload()), 100);
  ASSERT_NE(store.get(key).payload, nullptr);

  std::string text;
  ASSERT_TRUE(support::read_file_to_string(store.entry_path(key), &text));
  std::ofstream(store.entry_path(key), std::ios::trunc)
      << text.substr(0, text.size() / 2);
  EXPECT_EQ(store.get(key).payload, nullptr);
  EXPECT_GE(store.stats().corrupt, 1u);

  // Overwriting the truncated entry heals it.
  store.put(key, shared_payload(sample_analyze_payload()), 100);
  EXPECT_NE(store.get(key).payload, nullptr);
}

TEST(DiskStoreTest, WrongVersionHeaderReadsAsMiss) {
  DiskStore store(DiskStore::Config{fresh_dir("version")});
  const CacheKey key{3, 4};
  store.put(key, shared_payload(sample_analyze_payload()), 100);
  std::string text;
  ASSERT_TRUE(support::read_file_to_string(store.entry_path(key), &text));
  const std::size_t pos = text.find("v=1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 3, "v=9");
  ASSERT_TRUE(support::write_file_atomic(store.entry_path(key), text));
  EXPECT_EQ(store.get(key).payload, nullptr);
  EXPECT_GE(store.stats().corrupt, 1u);
}

TEST(DiskStoreTest, UnknownTrailingKeysNeverPoisonThePayload) {
  DiskStore store(DiskStore::Config{fresh_dir("unknown")});
  const CacheKey key{5, 6};
  const ResultPayload p = sample_analyze_payload();
  store.put(key, shared_payload(p), 100);
  std::string text;
  ASSERT_TRUE(support::read_file_to_string(store.entry_path(key), &text));
  ASSERT_EQ(text.back(), '\n');
  text.pop_back();
  text += " zfuture=1\n";
  ASSERT_TRUE(support::write_file_atomic(store.entry_path(key), text));
  // Well-formed unknown keys are skipped (forward compatibility); the
  // decoded payload must be exactly the one written, never a hybrid.
  const auto hit = store.get(key);
  ASSERT_NE(hit.payload, nullptr);
  expect_payload_eq(*hit.payload, p);

  // Unknown trailing *garbage* (malformed token) is corruption: a miss.
  text.pop_back();
  text += " %%broken\n";
  ASSERT_TRUE(support::write_file_atomic(store.entry_path(key), text));
  EXPECT_EQ(store.get(key).payload, nullptr);
}

TEST(DiskStoreTest, GarbageAndBinaryEntriesReadAsMiss) {
  DiskStore store(DiskStore::Config{fresh_dir("garbage")});
  const CacheKey key{7, 8};
  store.put(key, shared_payload(sample_analyze_payload()), 100);
  std::ofstream(store.entry_path(key), std::ios::trunc | std::ios::binary)
      << std::string("\x00\xff\x7f garbage\n\n more", 18);
  EXPECT_EQ(store.get(key).payload, nullptr);
}

// ---------------------------------------------------------------------------
// TieredStore

TEST(TieredStoreTest, DiskHitPromotesIntoMemory) {
  const std::string dir = fresh_dir("promote");
  const CacheKey key{11, 22};
  {
    TieredStore first(std::make_unique<MemoryStore>(),
                      std::make_unique<DiskStore>(DiskStore::Config{dir}));
    first.put(key, shared_payload(sample_analyze_payload()), 100);
    EXPECT_EQ(first.get(key).tier, StoreTier::Memory);
  }
  // "Restart": fresh memory, same disk.
  TieredStore second(std::make_unique<MemoryStore>(),
                     std::make_unique<DiskStore>(DiskStore::Config{dir}));
  EXPECT_EQ(second.get(key).tier, StoreTier::Disk);
  // The disk hit was promoted: the next lookup is served from memory.
  EXPECT_EQ(second.get(key).tier, StoreTier::Memory);
}

TEST(TieredStoreTest, TimedOutPayloadsStayOffDisk) {
  const std::string dir = fresh_dir("timeout_policy");
  TieredStore store(std::make_unique<MemoryStore>(),
                    std::make_unique<DiskStore>(DiskStore::Config{dir}));
  ResultPayload timed = sample_analyze_payload();
  timed.stats.stop = support::StopCause::TimedOut;
  const CacheKey key{33, 44};
  store.put(key, shared_payload(timed), 100);
  EXPECT_EQ(store.get(key).tier, StoreTier::Memory)
      << "timed-out payloads are reusable within the process";
  EXPECT_EQ(store.disk_stats().insertions, 0u)
      << "but must never be persisted";
  EXPECT_EQ(DiskStore(DiskStore::Config{dir}).get(key).payload, nullptr);
}

TEST(TieredStoreTest, NullDiskIsMemoryOnly) {
  TieredStore store(std::make_unique<MemoryStore>(), nullptr);
  EXPECT_FALSE(store.has_disk());
  const CacheKey key{55, 66};
  store.put(key, shared_payload(sample_analyze_payload()), 100);
  EXPECT_EQ(store.get(key).tier, StoreTier::Memory);
  EXPECT_EQ(store.disk_stats().hits, 0u);
}

// ---------------------------------------------------------------------------
// engine acceptance: cold / warm / cold-restart byte-identity

TEST(EngineDisk, ColdWarmAndRestartLinesAreByteIdentical) {
  const std::string dir = fresh_dir("engine_restart");
  EngineConfig cfg;
  cfg.cache_dir = dir;

  const std::string line = "reduce kernel=fir8 limits=6,6 emit=1 id=9";
  std::string cold, warm, restart;
  {
    AnalysisEngine engine(cfg);
    const Response r1 = engine.run(service::parse_request_line(line, 9));
    ASSERT_TRUE(r1.payload->ok) << r1.payload->error;
    EXPECT_FALSE(r1.cache_hit);
    cold = service::render_response(r1);

    const Response r2 = engine.run(service::parse_request_line(line, 9));
    EXPECT_TRUE(r2.cache_hit);
    EXPECT_EQ(r2.tier, StoreTier::Memory);
    warm = service::render_response(r2);
    EXPECT_EQ(engine.stats().memory_hits, 1u);
  }
  {
    // Cold restart: new engine, empty MemoryStore, same cache_dir.
    AnalysisEngine engine(cfg);
    const Response r3 = engine.run(service::parse_request_line(line, 9));
    EXPECT_TRUE(r3.cache_hit);
    EXPECT_EQ(r3.tier, StoreTier::Disk);
    restart = service::render_response(r3);
    const auto st = engine.stats();
    EXPECT_EQ(st.disk_hits, 1u);
    EXPECT_EQ(st.memory_hits, 0u);
    EXPECT_TRUE(st.disk_enabled);
    EXPECT_EQ(st.disk.hits, 1u);
  }
  ASSERT_NE(cold.find("cached=0"), std::string::npos);
  ASSERT_NE(warm.find("cached=1"), std::string::npos);
  ASSERT_NE(restart.find("cached=1"), std::string::npos);
  // The acceptance bar: the three lines differ only in cached= and ms=
  // (the reduced-DDG text included — emit=1 rides through the disk tier).
  EXPECT_EQ(test::strip_delivery(cold), test::strip_delivery(warm));
  EXPECT_EQ(test::strip_delivery(cold), test::strip_delivery(restart));
}

TEST(EngineDisk, AnalyzeRestartMatchesAcrossEngines) {
  const std::string dir = fresh_dir("engine_analyze");
  EngineConfig cfg;
  cfg.cache_dir = dir;
  std::string cold;
  {
    AnalysisEngine engine(cfg);
    cold = service::render_response(
        engine.run(service::parse_request_line("analyze kernel=lin-ddot", 1)));
  }
  AnalysisEngine engine(cfg);
  const Response r = engine.run(
      service::parse_request_line("analyze kernel=lin-ddot", 1));
  EXPECT_EQ(r.tier, StoreTier::Disk);
  EXPECT_EQ(test::strip_delivery(cold),
            test::strip_delivery(service::render_response(r)));
}

TEST(EngineDisk, TimedOutResultsAreNotServedAcrossRestart) {
  const std::string dir = fresh_dir("engine_timeout");
  EngineConfig cfg;
  cfg.cache_dir = dir;

  support::Rng rng(77);
  ddg::LayeredDagParams p;
  p.layers = 6;
  p.min_width = 4;
  p.max_width = 6;
  p.edge_prob = 0.8;
  Request req = service::make_analyze_request(
      ddg::random_layered(rng, ddg::superscalar_model(), p));
  req.id = 1;
  req.budget_seconds = 1e-9;

  {
    AnalysisEngine engine(cfg);
    const Response r1 = engine.run(Request(req));
    ASSERT_EQ(r1.payload->stats.stop, support::StopCause::TimedOut);
    // Within the process it is cached (in memory)...
    EXPECT_TRUE(engine.run(Request(req)).cache_hit);
    EXPECT_EQ(engine.stats().disk.insertions, 0u);
  }
  // ...but a restart recomputes: wall-clock best-efforts don't persist.
  AnalysisEngine engine(cfg);
  const Response r2 = engine.run(Request(req));
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_EQ(engine.stats().disk_hits, 0u);
}

}  // namespace
}  // namespace rs
