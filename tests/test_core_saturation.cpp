// Top-level pipeline (figure 1): analyze every type, reduce where needed,
// hand a register-pressure-safe DDG to a register-blind scheduler.
#include <gtest/gtest.h>

#include "core/rs_exact.hpp"
#include "core/saturation.hpp"
#include "ddg/builder.hpp"
#include "ddg/kernels.hpp"
#include "sched/lifetime.hpp"
#include "sched/list_sched.hpp"
#include "support/assert.hpp"

namespace rs::core {
namespace {

using ddg::kFloatReg;
using ddg::kIntReg;

TEST(Analyze, ReportsAllTypes) {
  const ddg::Ddg d = ddg::liv_loop1(ddg::superscalar_model());
  const SaturationReport rep = analyze(d);
  ASSERT_EQ(rep.per_type.size(), 2u);
  EXPECT_TRUE(rep.per_type[kIntReg].proven);
  EXPECT_TRUE(rep.per_type[kFloatReg].proven);
  EXPECT_GE(rep.of(kFloatReg).rs, 3);
  EXPECT_GT(rep.of(kIntReg).value_count, 0);
  EXPECT_TRUE(rep.fits({rep.of(kIntReg).rs, rep.of(kFloatReg).rs}));
  EXPECT_FALSE(rep.fits({rep.of(kIntReg).rs, rep.of(kFloatReg).rs - 1}));
}

TEST(Analyze, EnginesConsistent) {
  const ddg::Ddg d = ddg::lin_daxpy(ddg::superscalar_model());
  AnalyzeOptions greedy;
  greedy.engine = RsEngine::Greedy;
  AnalyzeOptions exact;
  exact.engine = RsEngine::ExactCombinatorial;
  AnalyzeOptions ilp;
  ilp.engine = RsEngine::ExactIlp;
  const SaturationReport g = analyze(d, greedy);
  const SaturationReport e = analyze(d, exact);
  const SaturationReport i = analyze(d, ilp, support::SolveContext(120));
  for (ddg::RegType t = 0; t < d.type_count(); ++t) {
    EXPECT_LE(g.of(t).rs, e.of(t).rs);
    EXPECT_TRUE(e.of(t).proven);
    ASSERT_TRUE(i.of(t).proven);
    EXPECT_EQ(i.of(t).rs, e.of(t).rs);
  }
}

TEST(Pipeline, NoReductionWhenFitting) {
  const ddg::Ddg d = ddg::lin_dscal(ddg::superscalar_model());
  const SaturationReport rep = analyze(d);
  const PipelineResult out =
      ensure_limits(d, {rep.of(0).rs + 1, rep.of(1).rs + 1});
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.out.graph().edge_count(), d.graph().edge_count());
  for (const auto& r : out.per_type) {
    EXPECT_EQ(r.status, ReduceStatus::AlreadyFits);
  }
}

TEST(Pipeline, ReducesBothTypesIndependently) {
  const ddg::Ddg d = ddg::liv_loop23(ddg::superscalar_model());
  const SaturationReport rep = analyze(d);
  ASSERT_GE(rep.of(kFloatReg).rs, 4);
  ASSERT_GE(rep.of(kIntReg).rs, 4);
  const std::vector<int> limits = {rep.of(kIntReg).rs - 1,
                                   rep.of(kFloatReg).rs - 1};
  const PipelineResult out = ensure_limits(d, limits);
  ASSERT_TRUE(out.success) << out.note;
  // Verified: the output DDG's exact RS fits both limits.
  for (ddg::RegType t = 0; t < d.type_count(); ++t) {
    const TypeContext ctx(out.out, t);
    const RsExactResult rs = rs_exact(ctx);
    ASSERT_TRUE(rs.proven);
    EXPECT_LE(rs.rs, limits[t]) << "type " << t;
  }
}

TEST(Pipeline, DownstreamSchedulerIsRegisterSafe) {
  // The whole point of the paper: after the pipeline, ANY schedule the
  // resource-constrained scheduler produces fits the register file.
  const ddg::Ddg d = ddg::matmul_unroll4(ddg::superscalar_model());
  const SaturationReport rep = analyze(d);
  const std::vector<int> limits = {rep.of(kIntReg).rs,
                                   rep.of(kFloatReg).rs - 2};
  PipelineOptions opts;
  const PipelineResult out = ensure_limits(d, limits, opts);
  ASSERT_TRUE(out.success) << out.note;
  for (const int width : {1, 2, 4, 8}) {
    sched::Resources res;
    res.issue_width = width;
    const sched::Schedule s = sched::list_schedule(out.out, res);
    EXPECT_LE(sched::register_need(out.out, kFloatReg, s), limits[kFloatReg])
        << "width " << width;
    EXPECT_LE(sched::register_need(out.out, kIntReg, s), limits[kIntReg]);
  }
}

TEST(Pipeline, ExactReductionMode) {
  const ddg::Ddg d = ddg::lin_ddot(ddg::superscalar_model());
  const SaturationReport rep = analyze(d);
  PipelineOptions opts;
  opts.exact_reduction = true;
  const std::vector<int> limits = {rep.of(kIntReg).rs,
                                   rep.of(kFloatReg).rs - 1};
  const PipelineResult out = ensure_limits(d, limits, opts);
  ASSERT_TRUE(out.success) << out.note;
  const TypeContext ctx(out.out, kFloatReg);
  EXPECT_LE(rs_exact(ctx).rs, limits[kFloatReg]);
}

TEST(Pipeline, SpillReportedNotCrashed) {
  ddg::KernelBuilder kb(ddg::superscalar_model(), "pressure");
  const auto a = kb.live_in(kFloatReg, "a");
  const auto b = kb.live_in(kFloatReg, "b");
  kb.fadd("s", a, b);
  const ddg::Ddg d = kb.build();
  PipelineOptions opts;
  opts.reduce.src.slack_limit = 8;
  const PipelineResult out = ensure_limits(d, {4, 1}, opts);
  EXPECT_FALSE(out.success);
  EXPECT_NE(out.note.find("spill"), std::string::npos);
}

TEST(Pipeline, FastPathSkipsSmallTypes) {
  // |values| <= R: section 3's trivial bound, no analysis needed.
  const ddg::Ddg d = ddg::lin_dscal(ddg::superscalar_model());
  const ddg::ValueSet vs(d, kFloatReg);
  const PipelineResult out = ensure_limits(d, {32, vs.count()});
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.per_type[kFloatReg].status, ReduceStatus::AlreadyFits);
}

TEST(Pipeline, LimitValidation) {
  const ddg::Ddg d = ddg::lin_dscal(ddg::superscalar_model());
  EXPECT_THROW(ensure_limits(d, {4}), support::PreconditionError);
  EXPECT_THROW(ensure_limits(d, {4, 0}), support::PreconditionError);
}

}  // namespace
}  // namespace rs::core
