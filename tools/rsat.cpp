// rsat — command-line front end for the register saturation library.
//
//   rsat analyze <file.ddg> [--engine greedy|exact|ilp] [--budget S]
//       RS per register type, with witnesses proven or estimated.
//   rsat reduce <file.ddg> --limits N[,N...] [--exact] [-o out.ddg]
//       figure-1 pipeline; writes the register-safe DDG.
//   rsat dot <file.ddg>
//       Graphviz dump.
//   rsat kernels
//       list built-in reconstructed kernels.
//   rsat dump <kernel> [--vliw]
//       emit a built-in kernel in the .ddg text format.
//
// The .ddg text format is documented in src/ddg/io.hpp.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/saturation.hpp"
#include "ddg/io.hpp"
#include "ddg/kernels.hpp"
#include "graph/paths.hpp"
#include "support/assert.hpp"

namespace {

int usage() {
  std::fputs(
      "usage:\n"
      "  rsat analyze <file.ddg> [--engine greedy|exact|ilp] [--budget S]\n"
      "  rsat reduce  <file.ddg> --limits N[,N...] [--exact] [-o out.ddg]\n"
      "  rsat dot     <file.ddg>\n"
      "  rsat kernels\n"
      "  rsat dump <kernel> [--vliw]\n",
      stderr);
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  RS_REQUIRE(in.good(), "cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

rs::ddg::Ddg load(const std::string& path) {
  const rs::ddg::Ddg raw = rs::ddg::from_text(read_file(path));
  return raw.normalized();
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 3) return usage();
  rs::core::AnalyzeOptions opts;
  for (int i = 3; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--engine") && i + 1 < argc) {
      const std::string e = argv[++i];
      if (e == "greedy") opts.engine = rs::core::RsEngine::Greedy;
      else if (e == "exact") opts.engine = rs::core::RsEngine::ExactCombinatorial;
      else if (e == "ilp") opts.engine = rs::core::RsEngine::ExactIlp;
      else return usage();
    } else if (!std::strcmp(argv[i], "--budget") && i + 1 < argc) {
      opts.time_limit_seconds = std::atof(argv[++i]);
    }
  }
  const rs::ddg::Ddg dag = load(argv[2]);
  std::printf("%s: %d ops, %d arcs, critical path %lld\n",
              dag.name().c_str(), dag.op_count(), dag.graph().edge_count(),
              static_cast<long long>(rs::graph::critical_path(dag.graph())));
  const rs::core::SaturationReport report = rs::core::analyze(dag, opts);
  for (const auto& t : report.per_type) {
    std::printf("type %d: %d values, RS = %d (%s)\n", t.type, t.value_count,
                t.rs, t.proven ? "proven" : "estimate");
  }
  return 0;
}

int cmd_reduce(int argc, char** argv) {
  if (argc < 3) return usage();
  std::vector<int> limits;
  std::string out_path;
  rs::core::PipelineOptions opts;
  for (int i = 3; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--limits") && i + 1 < argc) {
      std::istringstream ss(argv[++i]);
      std::string tok;
      while (std::getline(ss, tok, ',')) limits.push_back(std::stoi(tok));
    } else if (!std::strcmp(argv[i], "--exact")) {
      opts.exact_reduction = true;
    } else if (!std::strcmp(argv[i], "-o") && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const rs::ddg::Ddg dag = load(argv[2]);
  if (static_cast<int>(limits.size()) != dag.type_count()) {
    std::fprintf(stderr, "need %d comma-separated limits (one per type)\n",
                 dag.type_count());
    return 2;
  }
  const rs::core::PipelineResult result = rs::core::ensure_limits(dag, limits, opts);
  for (rs::ddg::RegType t = 0; t < dag.type_count(); ++t) {
    const auto& r = result.per_type[t];
    const char* status = "?";
    switch (r.status) {
      case rs::core::ReduceStatus::AlreadyFits: status = "fits"; break;
      case rs::core::ReduceStatus::Reduced: status = "reduced"; break;
      case rs::core::ReduceStatus::SpillNeeded: status = "SPILL NEEDED"; break;
      case rs::core::ReduceStatus::LimitHit: status = "budget exhausted"; break;
    }
    std::printf("type %d: %s (RS -> %d, +%d arcs, ILP loss %lld)\n", t, status,
                r.achieved_rs, r.arcs_added,
                static_cast<long long>(r.ilp_loss()));
  }
  if (!result.success) {
    std::fprintf(stderr, "pipeline incomplete: %s\n", result.note.c_str());
    return 1;
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << rs::ddg::to_text(result.out);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_dump(int argc, char** argv) {
  if (argc < 3) return usage();
  const bool vliw = argc > 3 && !std::strcmp(argv[3], "--vliw");
  const auto model = vliw ? rs::ddg::vliw_model() : rs::ddg::superscalar_model();
  std::fputs(rs::ddg::to_text(rs::ddg::build_kernel(argv[2], model)).c_str(),
             stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "analyze") return cmd_analyze(argc, argv);
    if (cmd == "reduce") return cmd_reduce(argc, argv);
    if (cmd == "dot") {
      if (argc < 3) return usage();
      std::fputs(load(argv[2]).to_dot().c_str(), stdout);
      return 0;
    }
    if (cmd == "kernels") {
      for (const auto& name : rs::ddg::kernel_names()) {
        std::puts(name.c_str());
      }
      return 0;
    }
    if (cmd == "dump") return cmd_dump(argc, argv);
    return usage();
  } catch (const rs::support::PreconditionError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
