// rsat — command-line front end for the register saturation library.
//
//   rsat analyze <file.ddg> [--engine greedy|exact|ilp] [--budget S]
//       [--stats]
//       RS per register type, with witnesses proven or estimated.
//   rsat reduce <file.ddg> --limits N[,N...] [--exact] [--budget S]
//       [--stats] [-o out.ddg]
//       figure-1 pipeline; writes the register-safe DDG.
//   rsat <operation> <file.ddg | kernel=<name> | ...> [key=value ...]
//       one-shot protocol request for any registered service operation
//       (minreg, spill, schedule, ... — `rsat` with no arguments lists
//       them). Options are the protocol's own key=value tokens, parsed by
//       the same parser batch and serve use, and the answer is the
//       protocol result line — byte-identical to what batch/serve emit
//       for the same request (modulo cached=/ms=).
//   rsat dot <file.ddg>
//       Graphviz dump.
//   rsat kernels
//       list built-in reconstructed kernels.
//   rsat dump <kernel> [--vliw]
//       emit a built-in kernel in the .ddg text format.
//   rsat batch [manifest] [--threads N] [--cache-mb M] [--cache-dir D]
//       [--trace-file F] [--solve-log F] [--metrics-json F] [--vliw]
//       stream protocol requests (stdin or manifest file) through the
//       cached concurrent analysis engine; result lines on stdout, a
//       summary with hit rate (split by memory/disk tier) and latency
//       percentiles on stderr. Understands cancel/drain/stats/metrics
//       control verbs; Ctrl-C (SIGINT) stops reading, cancels in-flight
//       solves cooperatively, prints every pending result plus the
//       summary, and exits 0.
//   rsat serve [--host H] [--port P] [--port-file F] [--threads N]
//       [--cache-mb M] [--cache-dir D] [--trace-file F] [--solve-log F]
//       [--metrics-json F] [--metrics-interval-s N] [--slow-ms T]
//       [--slo-ms T] [--vliw]
//       poll-based TCP front end speaking the same line protocol, one
//       stream per connection (port 0 = ephemeral; the bound port goes to
//       stderr and --port-file). SIGINT cancels in-flight solves, flushes
//       every pending result line, then shuts down cleanly.
//   rsat top --port P [--host H] [--interval-s N] [--once]
//       poll a running serve's `stats` verb and render a refreshing
//       per-operation terminal table (requests, hit/miss split, p50, SLO
//       error budget when the server runs with --slo-ms). --once prints a
//       single snapshot without clearing the screen and exits.
//
// --cache-dir D enables the persistent on-disk result tier under D (shared
// by batch and serve; entries survive restarts and are keyed by the
// canonical DDG fingerprint + request options). --budget S bounds total
// solve seconds (0 = no deadline); S must be a finite non-negative number.
// --stats prints aggregate solver statistics (nodes, prunes, simplex
// iterations, stop cause).
//
// Observability (batch and serve; see README "Observability"):
//   --trace-file F    one JSONL trace event per request (parse, queue,
//                     fingerprint, store lookup, solve, encode phases plus
//                     cache tier / stop cause / node count) to F
//   --solve-log F     one JSONL solve-log record per request to F: cheap
//                     canonical input features (ops, arcs, critical path,
//                     width, type mix) plus the outcome (engine/winner,
//                     stop cause, nodes, per-phase ms, cache tier) — the
//                     training corpus for adaptive strategy prediction
//   --metrics-json F  full metrics-registry snapshot (counters, gauges,
//                     histogram quantiles) written to F at exit
//   --metrics-interval-s N  serve only: atomically rewrite --metrics-json
//                     every N seconds (temp + rename), so a crashed serve
//                     still leaves a recent snapshot on disk
//   --slow-ms T       serve only: log requests slower than T ms to stderr
//   --slo-ms T        serve only: per-op latency objective; completed
//                     responses count as slo.<op>.ok or slo.<op>.breach
//                     and the stats verb gains slo.* error-budget fields
// The `stats` protocol verb returns the same registry live, as one
// key=value line, over batch stdin or a serve connection; the `metrics`
// verb returns it in Prometheus text exposition format (terminated by a
// literal `# EOF` line).
//
// The .ddg text format is documented in src/ddg/io.hpp; the batch request/
// result protocol in src/service/protocol.hpp.
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cfg/generators.hpp"
#include "cfg/io.hpp"
#include "core/saturation.hpp"
#include "ddg/io.hpp"
#include "ddg/kernels.hpp"
#include "graph/paths.hpp"
#include "service/engine.hpp"
#include "service/operation.hpp"
#include "service/protocol.hpp"
#include "service/serve.hpp"
#include "service/trace.hpp"
#include "support/assert.hpp"
#include "support/fs.hpp"
#include "support/metrics.hpp"
#include "support/parse.hpp"
#include "support/socket.hpp"
#include "support/timer.hpp"

namespace {

int usage() {
  // The operation roster and each operation's option grammar come from the
  // registry at runtime, so this help text cannot drift from the set of
  // operations batch/serve/one-shot actually accept.
  std::ostringstream os;
  os << "usage:\n"
        "  rsat analyze <file.ddg> [--engine greedy|exact|ilp] [--budget S]\n"
        "               [--stats]\n"
        "  rsat reduce  <file.ddg> --limits N[,N...] [--exact] [--budget S]\n"
        "               [--stats] [-o out.ddg]\n"
        "  rsat <op>    <file.ddg | kernel=<k> | ddg=<esc>> [key=value ...]\n"
        "               one-shot protocol request; prints the result line\n"
        "               (analyze/reduce with a bare <file.ddg> keep the\n"
        "               flag forms above). Program operations take\n"
        "               <file.prog | prog=<p>> payloads instead\n"
        "  rsat dot     <file.ddg>\n"
        "  rsat kernels\n"
        "  rsat programs\n"
        "  rsat dump <kernel> [--vliw]\n"
        "  rsat dumpprog <program> [--vliw]\n"
        "  rsat batch [manifest] [--threads N] [--cache-mb M] [--cache-dir D]\n"
        "             [--trace-file F] [--solve-log F] [--metrics-json F]\n"
        "             [--vliw]\n"
        "  rsat serve [--host H] [--port P] [--port-file F] [--threads N]\n"
        "             [--cache-mb M] [--cache-dir D] [--trace-file F]\n"
        "             [--solve-log F] [--metrics-json F]\n"
        "             [--metrics-interval-s N] [--slow-ms T] [--slo-ms T]\n"
        "             [--vliw]\n"
        "  rsat top   --port P [--host H] [--interval-s N] [--once]\n"
        "\n"
        "operations (one-shot <op> and batch/serve request lines: "
     << rs::service::operation_names("|")
     << "|cancel|drain|stats|metrics):\n";
  for (const rs::service::Operation* op : rs::service::operations()) {
    os << "  " << op->name();
    for (std::size_t pad = op->name().size(); pad < 9; ++pad) os << ' ';
    os << op->synopsis() << '\n';
  }
  os << "common request options: budget=<sec> id=<n> name=<str>; kernel=,\n"
        "prog= and file=<x>.prog payloads also take model=superscalar|vliw\n";
  std::fputs(os.str().c_str(), stderr);
  return 2;
}

/// `rsat <op> <payload> [key=value ...]`: one protocol request through a
/// single-threaded engine, answered with its protocol result line. The
/// option tokens are handed to the *protocol parser* verbatim, so the
/// one-shot path and batch/serve share one option grammar by construction.
int cmd_oneshot(const rs::service::Operation& op, int argc, char** argv) {
  if (argc < 3) return usage();
  std::string line{op.name()};
  // A bare path is shorthand for file=<path>; anything with '=' is a
  // protocol token already (kernel=..., ddg=..., or an option).
  const std::string payload = argv[2];
  if (payload.find('=') == std::string::npos) {
    line += " file=" + rs::service::escape_field(payload);
  } else {
    line += " " + payload;
  }
  for (int i = 3; i < argc; ++i) {
    line += " ";
    line += argv[i];
  }
  rs::service::EngineConfig cfg;
  cfg.threads = 1;
  rs::service::AnalysisEngine engine(cfg);
  const rs::service::Response resp =
      engine.run(rs::service::parse_request_line(line, 1));
  std::puts(rs::service::render_response(resp).c_str());
  return resp.payload->ok && resp.payload->success ? 0 : 1;
}

double parse_budget(const std::string& s) {
  return rs::support::parse_budget_seconds(s, "--budget");
}

std::string read_file(const std::string& path) {
  std::string text;
  RS_REQUIRE(rs::support::read_file_to_string(path, &text),
             "cannot open " + path);
  return text;
}

rs::ddg::Ddg load(const std::string& path) {
  const rs::ddg::Ddg raw = rs::ddg::from_text(read_file(path));
  return raw.normalized();
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 3) return usage();
  rs::core::AnalyzeOptions opts;
  double budget = 30.0;  // seconds; 0 = no deadline
  bool want_stats = false;
  for (int i = 3; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--engine") && i + 1 < argc) {
      const std::string e = argv[++i];
      if (e == "greedy") opts.engine = rs::core::RsEngine::Greedy;
      else if (e == "exact") opts.engine = rs::core::RsEngine::ExactCombinatorial;
      else if (e == "ilp") opts.engine = rs::core::RsEngine::ExactIlp;
      else return usage();
    } else if (!std::strcmp(argv[i], "--budget") && i + 1 < argc) {
      try {
        budget = parse_budget(argv[++i]);
      } catch (const rs::support::PreconditionError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return usage();
      }
    } else if (!std::strcmp(argv[i], "--stats")) {
      want_stats = true;
    }
  }
  const rs::ddg::Ddg dag = load(argv[2]);
  std::printf("%s: %d ops, %d arcs, critical path %lld\n",
              dag.name().c_str(), dag.op_count(), dag.graph().edge_count(),
              static_cast<long long>(rs::graph::critical_path(dag.graph())));
  const rs::core::SaturationReport report =
      rs::core::analyze(dag, opts, rs::support::SolveContext(budget));
  for (const auto& t : report.per_type) {
    std::printf("type %d: %d values, RS = %d (%s)\n", t.type, t.value_count,
                t.rs, t.proven ? "proven" : "estimate");
    if (want_stats) {
      std::printf("type %d stats: %s\n", t.type, t.stats.summary().c_str());
    }
  }
  if (want_stats) {
    std::printf("stats: %s\n", report.stats.summary().c_str());
  }
  return 0;
}

int cmd_reduce(int argc, char** argv) {
  if (argc < 3) return usage();
  std::vector<int> limits;
  std::string out_path;
  rs::core::PipelineOptions opts;
  double budget = 30.0;  // seconds; 0 = no deadline
  bool want_stats = false;
  for (int i = 3; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--limits") && i + 1 < argc) {
      try {
        limits = rs::support::parse_int_list(argv[++i], ',', "--limits");
      } catch (const rs::support::PreconditionError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return usage();
      }
    } else if (!std::strcmp(argv[i], "--exact")) {
      opts.exact_reduction = true;
    } else if (!std::strcmp(argv[i], "--budget") && i + 1 < argc) {
      try {
        budget = parse_budget(argv[++i]);
      } catch (const rs::support::PreconditionError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return usage();
      }
    } else if (!std::strcmp(argv[i], "--stats")) {
      want_stats = true;
    } else if (!std::strcmp(argv[i], "-o") && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const rs::ddg::Ddg dag = load(argv[2]);
  if (static_cast<int>(limits.size()) != dag.type_count()) {
    std::fprintf(stderr, "need %d comma-separated limits (one per type)\n",
                 dag.type_count());
    return 2;
  }
  const rs::core::PipelineResult result = rs::core::ensure_limits(
      dag, limits, opts, rs::support::SolveContext(budget));
  for (rs::ddg::RegType t = 0; t < dag.type_count(); ++t) {
    const auto& r = result.per_type[t];
    const char* status = "?";
    switch (r.status) {
      case rs::core::ReduceStatus::AlreadyFits: status = "fits"; break;
      case rs::core::ReduceStatus::Reduced: status = "reduced"; break;
      case rs::core::ReduceStatus::SpillNeeded: status = "SPILL NEEDED"; break;
      case rs::core::ReduceStatus::LimitHit: status = "budget exhausted"; break;
    }
    std::printf("type %d: %s (RS -> %d, +%d arcs, ILP loss %lld)\n", t, status,
                r.achieved_rs, r.arcs_added,
                static_cast<long long>(r.ilp_loss()));
  }
  if (want_stats) {
    std::printf("stats: %s\n", result.stats.summary().c_str());
  }
  if (!result.success) {
    std::fprintf(stderr, "pipeline incomplete: %s\n", result.note.c_str());
    return 1;
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << rs::ddg::to_text(result.out);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void handle_sigint(int) { g_interrupted = 1; }

/// Installs the SIGINT handler without SA_RESTART so a blocking stdin read
/// returns (with EINTR) instead of resuming, letting the reader loop notice
/// the interrupt and start the drain. SA_RESETHAND restores the default
/// action after the first signal, so a second Ctrl-C always terminates.
void install_sigint_handler() {
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction sa = {};
  sa.sa_handler = handle_sigint;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  sigaction(SIGINT, &sa, nullptr);
#else
  std::signal(SIGINT, handle_sigint);
#endif
}

/// SIGINT is delivered to an arbitrary thread with it unblocked. The drain
/// design needs it on the *main* thread (whose blocking stdin read must
/// return EINTR), so SIGINT is masked around the creation of every helper
/// thread — engine workers, printer, watcher all inherit the blocked mask —
/// and unmasked in main afterwards.
void mask_sigint(bool block) {
#if defined(__unix__) || defined(__APPLE__)
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  pthread_sigmask(block ? SIG_BLOCK : SIG_UNBLOCK, &set, nullptr);
#else
  static_cast<void>(block);
#endif
}

/// Shared by batch and serve: the hit-rate line split by store tier, plus
/// the effective persistent-cache directory and its counters when enabled.
void print_cache_summary(const rs::service::EngineStats& st,
                         const std::string& cache_dir) {
  std::fprintf(stderr,
               "cache: %llu hits (%llu mem, %llu disk) + %llu coalesced / "
               "%llu lookups (%.1f%% hit rate), %zu entries, %zu bytes\n",
               static_cast<unsigned long long>(st.cache_hits),
               static_cast<unsigned long long>(st.memory_hits),
               static_cast<unsigned long long>(st.disk_hits),
               static_cast<unsigned long long>(st.coalesced),
               static_cast<unsigned long long>(st.cache_hits + st.coalesced +
                                               st.misses),
               100.0 * st.hit_rate(), st.cache_entries, st.cache_bytes);
  if (st.disk_enabled) {
    std::fprintf(stderr,
                 "cache dir: %s (%llu disk hits, %llu writes, %llu corrupt, "
                 "%llu write errors)\n",
                 cache_dir.c_str(),
                 static_cast<unsigned long long>(st.disk.hits),
                 static_cast<unsigned long long>(st.disk.insertions),
                 static_cast<unsigned long long>(st.disk.corrupt),
                 static_cast<unsigned long long>(st.disk.write_errors));
  }
  // One row per operation actually exercised (EngineStats::per_op).
  std::uint64_t op_hits = 0, op_misses = 0;
  for (const auto& [name, op] : st.per_op) {
    std::fprintf(stderr,
                 "op %s: %llu submitted, %llu hits, %llu misses, "
                 "p50 %.3f ms\n",
                 name.c_str(), static_cast<unsigned long long>(op.submitted),
                 static_cast<unsigned long long>(op.hits),
                 static_cast<unsigned long long>(op.misses), op.p50_ms);
    op_hits += op.hits;
    op_misses += op.misses;
  }
  // Tiling invariants (both front ends print summaries only at idle, when
  // they hold exactly): every completed response is exactly one of a
  // memory hit, disk hit, coalesce, or miss, and the per-op slices sum to
  // the aggregates. A violation is an accounting bug worth shouting about,
  // not worth killing a server that just answered its workload over.
  if (!st.counters_tile()) {
    std::fprintf(stderr,
                 "WARNING: cache counters do not tile: "
                 "%llu mem + %llu disk + %llu coalesced + %llu misses != "
                 "%llu completed\n",
                 static_cast<unsigned long long>(st.memory_hits),
                 static_cast<unsigned long long>(st.disk_hits),
                 static_cast<unsigned long long>(st.coalesced),
                 static_cast<unsigned long long>(st.misses),
                 static_cast<unsigned long long>(st.completed));
  }
  if (op_hits != st.cache_hits + st.coalesced || op_misses != st.misses) {
    std::fprintf(stderr,
                 "WARNING: per-op slices do not tile the engine totals: "
                 "hits %llu != %llu or misses %llu != %llu\n",
                 static_cast<unsigned long long>(op_hits),
                 static_cast<unsigned long long>(st.cache_hits + st.coalesced),
                 static_cast<unsigned long long>(op_misses),
                 static_cast<unsigned long long>(st.misses));
  }
}

/// --metrics-json: the whole registry (engine.*, op.*, store.*, pool.*, and
/// serve.* when serving) as one JSON object, written atomically at exit.
void write_metrics_json(const rs::support::MetricsRegistry& metrics,
                        const std::string& path) {
  if (path.empty()) return;
  if (!rs::support::write_file_atomic(path, metrics.to_json() + "\n")) {
    std::fprintf(stderr, "warning: cannot write metrics json %s\n",
                 path.c_str());
    return;
  }
  std::fprintf(stderr, "metrics json: %s\n", path.c_str());
}

int cmd_serve(int argc, char** argv) {
  rs::service::ServeConfig cfg;
  std::string metrics_json;
  double metrics_interval_s = 0;
  try {
    for (int i = 2; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--host") && i + 1 < argc) {
        cfg.host = argv[++i];
      } else if (!std::strcmp(argv[i], "--port") && i + 1 < argc) {
        cfg.port = rs::support::parse_int(argv[++i], "--port");
        RS_REQUIRE(cfg.port >= 0 && cfg.port <= 65535,
                   "--port must be in [0, 65535]");
      } else if (!std::strcmp(argv[i], "--port-file") && i + 1 < argc) {
        cfg.port_file = argv[++i];
      } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
        const int threads = rs::support::parse_int(argv[++i], "--threads");
        RS_REQUIRE(threads >= 0, "--threads must be >= 0");
        cfg.engine.threads = static_cast<std::size_t>(threads);
      } else if (!std::strcmp(argv[i], "--cache-mb") && i + 1 < argc) {
        const int mb = rs::support::parse_int(argv[++i], "--cache-mb");
        RS_REQUIRE(mb >= 0, "--cache-mb must be >= 0");
        cfg.engine.cache.max_bytes = static_cast<std::size_t>(mb) << 20;
      } else if (!std::strcmp(argv[i], "--cache-dir") && i + 1 < argc) {
        cfg.engine.cache_dir = argv[++i];
        RS_REQUIRE(!cfg.engine.cache_dir.empty(),
                   "--cache-dir must not be empty");
      } else if (!std::strcmp(argv[i], "--trace-file") && i + 1 < argc) {
        cfg.trace_file = argv[++i];
        RS_REQUIRE(!cfg.trace_file.empty(), "--trace-file must not be empty");
      } else if (!std::strcmp(argv[i], "--solve-log") && i + 1 < argc) {
        cfg.solve_log_file = argv[++i];
        RS_REQUIRE(!cfg.solve_log_file.empty(),
                   "--solve-log must not be empty");
      } else if (!std::strcmp(argv[i], "--metrics-json") && i + 1 < argc) {
        metrics_json = argv[++i];
        RS_REQUIRE(!metrics_json.empty(), "--metrics-json must not be empty");
      } else if (!std::strcmp(argv[i], "--metrics-interval-s") &&
                 i + 1 < argc) {
        metrics_interval_s = rs::support::parse_budget_seconds(
            argv[++i], "--metrics-interval-s");
        RS_REQUIRE(metrics_interval_s > 0,
                   "--metrics-interval-s must be > 0");
      } else if (!std::strcmp(argv[i], "--slow-ms") && i + 1 < argc) {
        cfg.slow_ms = rs::support::parse_budget_seconds(argv[++i], "--slow-ms");
      } else if (!std::strcmp(argv[i], "--slo-ms") && i + 1 < argc) {
        cfg.slo_ms = rs::support::parse_budget_seconds(argv[++i], "--slo-ms");
        RS_REQUIRE(cfg.slo_ms > 0, "--slo-ms must be > 0");
      } else if (!std::strcmp(argv[i], "--vliw")) {
        cfg.protocol.default_model = rs::ddg::vliw_model();
      } else {
        RS_REQUIRE(false, std::string("unknown serve flag ") + argv[i]);
      }
    }
    RS_REQUIRE(metrics_interval_s == 0 || !metrics_json.empty(),
               "--metrics-interval-s requires --metrics-json");
  } catch (const rs::support::PreconditionError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  }

  install_sigint_handler();
#if defined(__unix__) || defined(__APPLE__)
  // Without this, platforms lacking MSG_NOSIGNAL (macOS) would let one
  // client that disconnects before reading its result kill the whole
  // server with SIGPIPE on the write-back.
  std::signal(SIGPIPE, SIG_IGN);
#endif
  mask_sigint(true);  // engine workers spawn inside SocketServer
  rs::service::SocketServer server(cfg);

  // --metrics-interval-s: periodic atomic re-snapshot of --metrics-json
  // (write_file_atomic = temp + rename), so a crashed or SIGKILLed serve
  // leaves a recent metrics file on disk instead of nothing. Spawned while
  // SIGINT is still masked so only the main thread sees the interrupt.
  std::atomic<bool> snapshot_stop{false};
  std::thread snapshot_thread;
  if (metrics_interval_s > 0) {
    snapshot_thread = std::thread([&server, &snapshot_stop, &metrics_json,
                                   metrics_interval_s] {
      double since_write_s = 0;
      while (!snapshot_stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        since_write_s += 0.1;
        if (since_write_s + 1e-9 < metrics_interval_s) continue;
        since_write_s = 0;
        if (!rs::support::write_file_atomic(
                metrics_json, server.engine().metrics().to_json() + "\n")) {
          std::fprintf(stderr, "warning: cannot write metrics json %s\n",
                       metrics_json.c_str());
        }
      }
    });
  }
  mask_sigint(false);

  std::fprintf(stderr, "serve: listening on %s:%d\n", cfg.host.c_str(),
               server.port());
  if (!cfg.engine.cache_dir.empty()) {
    std::fprintf(stderr, "cache dir: %s\n", cfg.engine.cache_dir.c_str());
  }
  std::fflush(stderr);

  const rs::support::Timer wall;
  server.run([] { return g_interrupted != 0; });
  snapshot_stop.store(true);
  if (snapshot_thread.joinable()) snapshot_thread.join();

  const rs::service::ServeStats ss = server.serve_stats();
  const rs::service::EngineStats st = server.engine().stats();
  std::fprintf(stderr,
               "serve: %llu connections, %llu requests, %llu responses "
               "(%llu parse errors)%s\n",
               static_cast<unsigned long long>(ss.connections),
               static_cast<unsigned long long>(ss.requests),
               static_cast<unsigned long long>(ss.responses),
               static_cast<unsigned long long>(ss.parse_errors),
               g_interrupted ? " [interrupted, drained]" : "");
  print_cache_summary(st, cfg.engine.cache_dir);
  std::fprintf(stderr,
               "latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, max %.3f ms\n",
               st.p50_ms, st.p95_ms, st.p99_ms, st.max_ms);
  std::fprintf(stderr, "wall: %.3f s, %zu threads\n", wall.seconds(),
               server.engine().thread_count());
  if (const rs::service::TraceSink* sink = server.trace_sink()) {
    std::fprintf(stderr, "trace: %llu events to %s (%llu dropped)\n",
                 static_cast<unsigned long long>(sink->written()),
                 sink->path().c_str(),
                 static_cast<unsigned long long>(sink->dropped()));
  }
  if (const rs::service::TraceSink* sink = server.solve_log_sink()) {
    std::fprintf(stderr, "solve log: %llu records to %s (%llu dropped)\n",
                 static_cast<unsigned long long>(sink->written()),
                 sink->path().c_str(),
                 static_cast<unsigned long long>(sink->dropped()));
  }
  write_metrics_json(server.engine().metrics(), metrics_json);
  return 0;
}

int cmd_batch(int argc, char** argv) {
  std::string manifest_path;
  std::string trace_file;
  std::string solve_log_file;
  std::string metrics_json;
  rs::service::EngineConfig cfg;
  rs::service::ProtocolOptions popts;
  try {
    for (int i = 2; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
        const int threads = rs::support::parse_int(argv[++i], "--threads");
        RS_REQUIRE(threads >= 0, "--threads must be >= 0");
        cfg.threads = static_cast<std::size_t>(threads);
      } else if (!std::strcmp(argv[i], "--cache-mb") && i + 1 < argc) {
        const int mb = rs::support::parse_int(argv[++i], "--cache-mb");
        RS_REQUIRE(mb >= 0, "--cache-mb must be >= 0");
        cfg.cache.max_bytes = static_cast<std::size_t>(mb) << 20;
      } else if (!std::strcmp(argv[i], "--cache-dir") && i + 1 < argc) {
        cfg.cache_dir = argv[++i];
        RS_REQUIRE(!cfg.cache_dir.empty(), "--cache-dir must not be empty");
      } else if (!std::strcmp(argv[i], "--trace-file") && i + 1 < argc) {
        trace_file = argv[++i];
        RS_REQUIRE(!trace_file.empty(), "--trace-file must not be empty");
      } else if (!std::strcmp(argv[i], "--solve-log") && i + 1 < argc) {
        solve_log_file = argv[++i];
        RS_REQUIRE(!solve_log_file.empty(), "--solve-log must not be empty");
      } else if (!std::strcmp(argv[i], "--metrics-json") && i + 1 < argc) {
        metrics_json = argv[++i];
        RS_REQUIRE(!metrics_json.empty(), "--metrics-json must not be empty");
      } else if (!std::strcmp(argv[i], "--vliw")) {
        popts.default_model = rs::ddg::vliw_model();
      } else if (argv[i][0] == '-') {
        RS_REQUIRE(false, std::string("unknown batch flag ") + argv[i]);
      } else if (manifest_path.empty()) {
        manifest_path = argv[i];
      } else {
        return usage();
      }
    }
  } catch (const rs::support::PreconditionError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  }

  std::ifstream manifest;
  if (!manifest_path.empty()) {
    manifest.open(manifest_path);
    if (!manifest.good()) {
      std::fprintf(stderr, "error: cannot open %s\n", manifest_path.c_str());
      return 2;
    }
  }
  std::istream& in = manifest_path.empty() ? std::cin : manifest;

  install_sigint_handler();
  mask_sigint(true);  // unmasked again after every helper thread exists

  // Tracing asks the engine to carry a span on every Response; the printer
  // (which renders the result line, the last phase of a request's life)
  // stamps encode_ms/bytes and hands the span to the sink.
  cfg.trace = !trace_file.empty();
  std::unique_ptr<rs::service::TraceSink> trace_sink;
  if (cfg.trace) {
    rs::service::TraceSink::Config tc;
    tc.path = trace_file;
    trace_sink = std::make_unique<rs::service::TraceSink>(tc);
  }
  // The solve log shares the sink machinery: one pre-rendered JSONL record
  // per request, written by the printer at delivery time.
  cfg.solve_log = !solve_log_file.empty();
  std::unique_ptr<rs::service::TraceSink> solve_log_sink;
  if (cfg.solve_log) {
    solve_log_sink = std::make_unique<rs::service::TraceSink>(solve_log_file);
  }

  rs::service::AnalysisEngine engine(cfg);
  const rs::support::Timer wall;

  // The reader loop only observes g_interrupted between lines, so a SIGINT
  // arriving after EOF (manifest fully read, solves still running, main
  // thread blocked in printer.join()) would otherwise be swallowed. This
  // watcher turns the flag into engine.cancel_all() no matter which phase
  // the batch is in; every future then resolves promptly and the normal
  // drain/summary path runs.
  std::atomic<bool> watcher_done{false};
  std::thread sigint_watcher([&] {
    while (!watcher_done.load()) {
      if (g_interrupted) {
        engine.cancel_all();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  // One slot per request line: either a pre-rendered line (parse error or a
  // cancel/drain ack) or a pending response. A dedicated printer thread
  // emits result lines in request order as soon as each future resolves, so
  // a co-process driving stdin interactively sees its result without
  // waiting for EOF.
  struct Slot {
    std::string pre;
    bool stats = false;    // render a fresh stats snapshot at emission time
    bool metrics = false;  // render the Prometheus exposition at emission
    std::future<rs::service::Response> fut;
  };
  // Backpressure: each outstanding slot holds a parsed Request (with its
  // DDG) until printed, so cap how far the reader runs ahead of execution.
  constexpr std::size_t kMaxPending = 256;
  std::deque<Slot> pending;
  std::mutex mu;
  std::condition_variable cv;
  bool submitted_all = false;
  // Printer-owned tallies. Cancelled/timed-out responses count as ok (they
  // carry valid witnessed bounds) and are additionally tallied by cause.
  // Parse errors are reader-owned (parse_errors) and merged after join.
  std::uint64_t total = 0, ok = 0, failed = 0, parse_errors = 0;
  std::uint64_t cancelled = 0, timed_out = 0;

  std::thread printer([&] {
    for (;;) {
      Slot slot;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !pending.empty() || submitted_all; });
        if (pending.empty()) return;
        slot = std::move(pending.front());
        pending.pop_front();
        cv.notify_all();  // wake the reader if it hit the pending cap
      }
      if (slot.stats) {
        // Rendered here, not at parse time: emission order means every
        // request ahead of this line in the stream has already been printed,
        // so the snapshot reflects at least all of them as completed.
        std::puts(rs::service::render_stats_line(engine.stats()).c_str());
      } else if (slot.metrics) {
        // Multi-line body, framed by its terminating "# EOF" line.
        std::fputs(engine.metrics().to_prometheus().c_str(), stdout);
      } else if (!slot.pre.empty()) {
        std::puts(slot.pre.c_str());
      } else {
        const rs::service::Response resp = slot.fut.get();
        (resp.payload->ok ? ok : failed)++;
        if (resp.payload->ok) {
          switch (resp.payload->stats.stop) {
            case rs::support::StopCause::Cancelled: ++cancelled; break;
            case rs::support::StopCause::TimedOut: ++timed_out; break;
            default: break;
          }
        }
        const rs::support::Timer encode;
        const std::string out_line = rs::service::render_response(resp);
        if (trace_sink != nullptr && resp.trace != nullptr) {
          resp.trace->encode_ms = encode.millis();
          resp.trace->bytes = out_line.size() + 1;  // + '\n'
          trace_sink->write(*resp.trace);
        }
        if (solve_log_sink != nullptr && resp.solve_log != nullptr) {
          solve_log_sink->write_line(rs::service::render_solve_log_json(
              *resp.solve_log, rs::support::unix_now_seconds()));
        }
        std::puts(out_line.c_str());
      }
      std::fflush(stdout);
    }
  });

  mask_sigint(false);  // all helper threads spawned; deliver to main only

  auto push_slot = [&](Slot slot) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return pending.size() < kMaxPending; });
      pending.push_back(std::move(slot));
    }
    cv.notify_all();
  };

  std::string line;
  int lineno = 0;
  std::uint64_t next_id = 1;
  while (!g_interrupted && std::getline(in, line)) {
    ++lineno;
    if (rs::service::is_blank_or_comment(line)) continue;
    Slot slot;
    bool counts = true;  // control-verb acks are not requests
    try {
      const rs::support::Timer parse;
      rs::service::Command cmd =
          rs::service::parse_command_line(line, next_id, popts);
      switch (cmd.kind) {
        case rs::service::CommandKind::Submit:
          ++next_id;
          cmd.request.parse_ms = parse.millis();
          slot.fut = engine.submit(std::move(cmd.request));
          break;
        case rs::service::CommandKind::Cancel:
          slot.pre = rs::service::render_cancel_ack(
              cmd.cancel_id, engine.cancel(cmd.cancel_id));
          counts = false;
          break;
        case rs::service::CommandKind::Drain:
          // Block further reading until everything submitted so far has
          // completed; the printer drains concurrently.
          engine.wait_idle();
          slot.pre = rs::service::render_drain_ack();
          counts = false;
          break;
        case rs::service::CommandKind::Stats:
          slot.stats = true;  // printer snapshots the registry at emission
          counts = false;
          break;
        case rs::service::CommandKind::Metrics:
          slot.metrics = true;  // printer renders the exposition at emission
          counts = false;
          break;
      }
    } catch (const std::exception& e) {
      std::ostringstream os;
      os << "result id=" << next_id++ << " status=error name=line" << lineno
         << " msg=" << rs::service::escape_field(e.what());
      slot.pre = os.str();
      ++parse_errors;  // printer never inspects pre-rendered slots
    }
    if (counts) ++total;
    push_slot(std::move(slot));
  }
  if (g_interrupted) {
    // Drain-then-summarize: cancel every in-flight solve cooperatively and
    // wait. Each one still resolves its future (stop=cancelled), so every
    // already-submitted request gets its result line before the summary.
    // (Idempotent with the watcher's cancel_all for post-EOF interrupts.)
    engine.cancel_all();
    engine.wait_idle();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    submitted_all = true;
  }
  cv.notify_all();
  printer.join();
  watcher_done.store(true);
  sigint_watcher.join();
  failed += parse_errors;
  if (trace_sink != nullptr) trace_sink->flush();
  if (solve_log_sink != nullptr) solve_log_sink->flush();

  if (total == 0) {
    std::fprintf(stderr, "batch: 0 requests\n");
    write_metrics_json(engine.metrics(), metrics_json);
    return 0;
  }
  const double wall_s = wall.seconds();
  const rs::service::EngineStats st = engine.stats();
  std::fprintf(stderr,
               "batch: %llu requests, %llu ok, %llu error "
               "(%llu cancelled, %llu timed out)%s\n",
               static_cast<unsigned long long>(total),
               static_cast<unsigned long long>(ok),
               static_cast<unsigned long long>(failed),
               static_cast<unsigned long long>(cancelled),
               static_cast<unsigned long long>(timed_out),
               g_interrupted ? " [interrupted, drained]" : "");
  print_cache_summary(st, cfg.cache_dir);
  std::fprintf(stderr,
               "latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, max %.3f ms\n",
               st.p50_ms, st.p95_ms, st.p99_ms, st.max_ms);
  std::fprintf(stderr, "wall: %.3f s (%.1f req/s), %zu threads\n", wall_s,
               static_cast<double>(total) / wall_s, engine.thread_count());
  if (trace_sink != nullptr) {
    std::fprintf(stderr, "trace: %llu events to %s (%llu dropped)\n",
                 static_cast<unsigned long long>(trace_sink->written()),
                 trace_sink->path().c_str(),
                 static_cast<unsigned long long>(trace_sink->dropped()));
  }
  if (solve_log_sink != nullptr) {
    std::fprintf(stderr, "solve log: %llu records to %s (%llu dropped)\n",
                 static_cast<unsigned long long>(solve_log_sink->written()),
                 solve_log_sink->path().c_str(),
                 static_cast<unsigned long long>(solve_log_sink->dropped()));
  }
  write_metrics_json(engine.metrics(), metrics_json);
  if (g_interrupted) return 0;  // drained cleanly after Ctrl-C
  return failed == 0 ? 0 : 1;
}

/// One `rsat top` frame: the stats verb line rendered as a summary header
/// plus a per-operation table (and SLO columns when the server reports
/// slo_ms). Parsing reuses the protocol's own field splitter, so the view
/// cannot drift from what the stats verb actually emits.
void render_top_frame(const std::string& stats_line, const std::string& where,
                      bool clear) {
  const std::map<std::string, std::string> f =
      rs::service::parse_fields(stats_line);
  const auto field = [&f](const std::string& key) -> std::string {
    const auto it = f.find(key);
    return it == f.end() ? std::string("0") : it->second;
  };
  if (clear) std::fputs("\033[2J\033[H", stdout);  // clear + home
  std::printf("rsat top — %s\n", where.c_str());
  std::printf(
      "submitted %s  completed %s  errors %s  queue %s  hit_rate %s\n",
      field("submitted").c_str(), field("completed").c_str(),
      field("errors").c_str(), field("queue_depth").c_str(),
      field("hit_rate").c_str());
  std::printf("latency ms: p50 %s  p95 %s  p99 %s  max %s\n",
              field("p50_ms").c_str(), field("p95_ms").c_str(),
              field("p99_ms").c_str(), field("max_ms").c_str());
  const bool slo = f.count("slo_ms") != 0;
  if (slo) std::printf("slo_ms %s\n", field("slo_ms").c_str());
  std::printf("\n%-14s %10s %10s %10s %10s", "op", "submitted", "hits",
              "misses", "p50_ms");
  if (slo) std::printf(" %10s %10s %12s", "slo_ok", "slo_breach", "breach_rate");
  std::printf("\n");
  // Every op with a stats group has an op.<name>.submitted key; the map is
  // sorted, so rows come out name-ordered like the line itself.
  for (const auto& [key, value] : f) {
    static_cast<void>(value);
    const std::string prefix = "op.";
    const std::string suffix = ".submitted";
    if (key.rfind(prefix, 0) != 0 || key.size() <= prefix.size() + suffix.size() ||
        key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string name =
        key.substr(prefix.size(), key.size() - prefix.size() - suffix.size());
    std::printf("%-14s %10s %10s %10s %10s", name.c_str(),
                field("op." + name + ".submitted").c_str(),
                field("op." + name + ".hits").c_str(),
                field("op." + name + ".misses").c_str(),
                field("op." + name + ".p50_ms").c_str());
    if (slo) {
      std::printf(" %10s %10s %12s", field("slo." + name + ".ok").c_str(),
                  field("slo." + name + ".breach").c_str(),
                  field("slo." + name + ".breach_rate").c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

/// `rsat top`: poll a running serve's stats verb over one persistent
/// connection and render a refreshing per-op table.
int cmd_top(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  double interval_s = 2.0;
  bool once = false;
  try {
    for (int i = 2; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--host") && i + 1 < argc) {
        host = argv[++i];
      } else if (!std::strcmp(argv[i], "--port") && i + 1 < argc) {
        port = rs::support::parse_int(argv[++i], "--port");
        RS_REQUIRE(port >= 0 && port <= 65535, "--port must be in [0, 65535]");
      } else if (!std::strcmp(argv[i], "--interval-s") && i + 1 < argc) {
        interval_s =
            rs::support::parse_budget_seconds(argv[++i], "--interval-s");
        RS_REQUIRE(interval_s > 0, "--interval-s must be > 0");
      } else if (!std::strcmp(argv[i], "--once")) {
        once = true;
      } else {
        RS_REQUIRE(false, std::string("unknown top flag ") + argv[i]);
      }
    }
    RS_REQUIRE(port >= 0, "rsat top requires --port");
  } catch (const rs::support::PreconditionError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  }

  const int fd = rs::support::connect_tcp(host, port);
  const std::string where = host + ":" + std::to_string(port);
  std::string buf;
  int ret = 0;
  for (;;) {
    if (!rs::support::send_all(fd, "stats\n")) {
      std::fprintf(stderr, "rsat top: connection lost to %s\n", where.c_str());
      ret = 1;
      break;
    }
    std::size_t nl;
    bool lost = false;
    while ((nl = buf.find('\n')) == std::string::npos) {
      const long n = rs::support::recv_some(fd, &buf);
      if (n == 0 || n == -2) {
        lost = true;
        break;
      }
      if (n == -1) {  // connect_tcp is blocking, but stay robust to EAGAIN
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    if (lost) {
      std::fprintf(stderr, "rsat top: connection lost to %s\n", where.c_str());
      ret = 1;
      break;
    }
    const std::string line = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    render_top_frame(line, where, !once);
    if (once) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long long>(interval_s * 1000)));
  }
  rs::support::close_fd(fd);
  return ret;
}

int cmd_dump(int argc, char** argv) {
  if (argc < 3) return usage();
  const bool vliw = argc > 3 && !std::strcmp(argv[3], "--vliw");
  const auto model = vliw ? rs::ddg::vliw_model() : rs::ddg::superscalar_model();
  std::fputs(rs::ddg::to_text(rs::ddg::build_kernel(argv[2], model)).c_str(),
             stdout);
  return 0;
}

int cmd_dumpprog(int argc, char** argv) {
  if (argc < 3) return usage();
  const bool vliw = argc > 3 && !std::strcmp(argv[3], "--vliw");
  const auto model = vliw ? rs::ddg::vliw_model() : rs::ddg::superscalar_model();
  std::fputs(rs::cfg::to_text(rs::cfg::build_program(argv[2], model)).c_str(),
             stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    // A protocol-token payload (kernel=..., ddg=...) selects the generic
    // one-shot path even for analyze/reduce, so every registered operation
    // accepts every payload form; a bare <file.ddg> keeps their legacy
    // human-readable flag commands.
    const bool proto_payload =
        argc >= 3 && std::strchr(argv[2], '=') != nullptr;
    if ((cmd != "analyze" && cmd != "reduce") || proto_payload) {
      if (const auto* op = rs::service::find_operation(cmd)) {
        return cmd_oneshot(*op, argc, argv);
      }
    }
    if (cmd == "analyze") return cmd_analyze(argc, argv);
    if (cmd == "reduce") return cmd_reduce(argc, argv);
    if (cmd == "dot") {
      if (argc < 3) return usage();
      std::fputs(load(argv[2]).to_dot().c_str(), stdout);
      return 0;
    }
    if (cmd == "kernels") {
      for (const auto& name : rs::ddg::kernel_names()) {
        std::puts(name.c_str());
      }
      return 0;
    }
    if (cmd == "programs") {
      for (const auto& name : rs::cfg::program_names()) {
        std::puts(name.c_str());
      }
      return 0;
    }
    if (cmd == "dump") return cmd_dump(argc, argv);
    if (cmd == "dumpprog") return cmd_dumpprog(argc, argv);
    if (cmd == "batch") return cmd_batch(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "top") return cmd_top(argc, argv);
    return usage();
  } catch (const rs::support::PreconditionError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 1;
  }
}
