#!/usr/bin/env python3
"""rsat_lint: repo-specific invariant linter for the rsat tree.

The clang thread-safety analysis (support/thread_annotations.hpp) proves
lock discipline, but only over mutexes it can see and only on clang. This
linter enforces the repo conventions that make that analysis — and the
repo's determinism and observability contracts — hold by construction:

  raw-clock       Clock reads (steady_clock::now, system_clock::now,
                  time(), gettimeofday, clock_gettime, ...) are allowed
                  only under src/support/ (timer.hpp, solve_context, ...).
                  Everything else takes time through support::Timer /
                  support::unix_now_seconds / SolveContext, so tests can
                  reason about where wall-clock nondeterminism enters.

  bare-mutex      std::mutex / std::lock_guard / std::unique_lock /
                  std::scoped_lock / std::condition_variable (and their
                  headers) are allowed only in src/support/mutex.hpp.
                  A bare std::mutex is invisible to -Wthread-safety; the
                  annotated support::Mutex / LockGuard / UniqueLock /
                  CondVar wrappers are the only lock vocabulary in src/.

  unseeded-rng    rand()/srand()/std::random_device/std::mt19937 are
                  allowed only in src/support/random.*. Results in this
                  repo must be byte-identical across runs and platforms;
                  all randomness flows through the seeded splitmix64
                  generator.

  metric-literal  Metric-name string literals ("engine.*", "op.*",
                  "store.*", "pool.*", "serve.*", "solver.*", "slo.*"),
                  trace-event phase keys, and solve-log feature keys may
                  appear only in their subsystem's single
                  registration/render site. One site per name means
                  grep-for-the-literal finds the writer, and a renamed
                  metric cannot silently fork into two spellings.

  iostream        #include <iostream> is banned in src/ (library code).
                  Library layers report through return values, metrics,
                  and trace events; only the CLI (tools/rsat.cpp) talks
                  to std streams.

Scope: every .hpp/.cpp under <root>/src. Comments are stripped before
matching, and string/char literal contents are blanked for all rules
except metric-literal (which matches inside string literals on purpose).

Suppression: append `// rsat-lint: allow(<rule>) <justification>` to the
offending line (or the line directly above it). The justification is
mandatory — an allow() with nothing after it is itself an error — so
every exemption in the tree documents why it is sound.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

RULES = ("raw-clock", "bare-mutex", "unseeded-rng", "metric-literal",
         "iostream")

# rule -> repo-relative paths (or directory prefixes ending in /) exempt
# from it. These are the designated homes of each capability, not a
# waiver list — new exemptions belong in a suppression comment with a
# justification, not here.
EXEMPT = {
    "raw-clock": ("src/support/",),
    "bare-mutex": ("src/support/mutex.hpp",),
    "unseeded-rng": ("src/support/random.hpp", "src/support/random.cpp"),
    "iostream": (),
}

# Metric-name prefix -> the one file allowed to spell names with that
# prefix. Keep in sync with the registration constructors; the clean-tree
# ctest run fails if a literal drifts to a second site.
METRIC_SITES = {
    "engine.": "src/service/engine.cpp",
    "op.": "src/service/engine.cpp",
    "store.": "src/service/store.cpp",
    "pool.": "src/support/thread_pool.cpp",
    "serve.": "src/service/serve.cpp",
    "solver.": "src/support/metrics.cpp",
    "slo.": "src/service/serve.cpp",
}
METRIC_RE = re.compile(
    r"(engine|op|store|pool|serve|solver|slo)"
    r"\.[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*\Z")

# Trace-event phase keys rendered by render_trace_json; single site below.
TRACE_KEYS = frozenset({
    "parse_ms", "queue_ms", "fp_ms", "lookup_ms", "solve_ms", "encode_ms",
    "total_ms", "blocks_parallel",
})
# Solve-log feature keys rendered by render_solve_log_json; same site.
# Keeping the spelling in one file is what makes the JSONL schema-stable
# enough to train on (ROADMAP: adaptive strategy prediction).
SOLVE_LOG_KEYS = frozenset({
    "ddg_ops", "ddg_arcs", "ddg_cp", "ddg_width", "ddg_types",
})
TRACE_SITE = "src/service/trace.cpp"

CODE_PATTERNS = {
    "raw-clock": re.compile(
        r"::now\s*\("
        r"|\bgettimeofday\s*\("
        r"|\bclock_gettime\s*\("
        r"|\bclock\s*\(\s*\)"
        r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
    "bare-mutex": re.compile(
        r"\bstd\s*::\s*(?:recursive_|timed_|shared_|recursive_timed_)?mutex\b"
        r"|\bstd\s*::\s*lock_guard\b"
        r"|\bstd\s*::\s*unique_lock\b"
        r"|\bstd\s*::\s*scoped_lock\b"
        r"|\bstd\s*::\s*condition_variable(?:_any)?\b"
        r"|#\s*include\s*<mutex>"
        r"|#\s*include\s*<condition_variable>"),
    "unseeded-rng": re.compile(
        r"\brand\s*\(\s*\)"
        r"|\bsrand\s*\("
        r"|\bstd\s*::\s*random_device\b"
        r"|\bstd\s*::\s*mt19937(?:_64)?\b"),
    "iostream": re.compile(r"#\s*include\s*<iostream>"),
}

MESSAGES = {
    "raw-clock": "clock read outside src/support/ — route time through "
                 "support/timer.hpp or the SolveContext deadline",
    "bare-mutex": "raw std:: locking primitive — use support::Mutex / "
                  "LockGuard / UniqueLock / CondVar (support/mutex.hpp) so "
                  "-Wthread-safety can see the lock",
    "unseeded-rng": "nondeterministic RNG outside src/support/random.* — "
                    "use the seeded support::SplitMix generator",
    "metric-literal": None,  # built per finding
    "iostream": "<iostream> in library code — report through return "
                "values, metrics, or trace events",
}

ALLOW_RE = re.compile(r"//\s*rsat-lint:\s*allow\(([a-z-]+)\)\s*(.*)")


def strip_views(text):
    """Returns (code, strings): `code` is `text` with comments removed and
    string/char literal contents blanked (newlines kept, so line numbers
    survive); `strings` is a list of (line, literal-content) for every
    non-comment string literal. Handles //, /* */, "..." with escapes,
    '...', and raw strings R"delim(...)delim"."""
    code = []
    strings = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    code.append("\n")
                    line += 1
                i += 1
            i = min(i + 2, n)
        elif c == '"' and i > 0 and text[i - 1] == "R":
            m = re.match(r'"([^()\s\\]{0,16})\(', text[i:])
            if m:
                delim = m.group(1)
                end = text.find(")" + delim + '"', i + len(m.group(0)))
                if end < 0:
                    end = n
                content = text[i + len(m.group(0)):end]
                strings.append((line, content))
                code.append('""')
                line += content.count("\n")
                code.append("\n" * content.count("\n"))
                i = min(end + len(delim) + 2, n)
            else:
                code.append(c)
                i += 1
        elif c == '"':
            j, content = i + 1, []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    content.append(text[j:j + 2])
                    j += 2
                elif text[j] == "\n":  # unterminated; bail at line end
                    break
                else:
                    content.append(text[j])
                    j += 1
            strings.append((line, "".join(content)))
            code.append('""')
            i = j + 1 if j < n and text[j] == '"' else j
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            code.append("''")
            i = j + 1 if j < n else n
        else:
            code.append(c)
            if c == "\n":
                line += 1
            i += 1
    return "".join(code), strings


def collect_allows(raw_lines):
    """line -> (rule, justification-or-None) from suppression comments."""
    allows = {}
    for idx, text in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(text)
        if m:
            just = m.group(2).strip()
            allows[idx] = (m.group(1), just if just else None)
    return allows


def exempt(rule, relpath):
    return any(relpath == e or (e.endswith("/") and relpath.startswith(e))
               for e in EXEMPT.get(rule, ()))


def lint_file(root, relpath):
    path = os.path.join(root, relpath)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [(relpath, 0, "io", str(e))]

    raw_lines = text.splitlines()
    allows = collect_allows(raw_lines)
    code, strings = strip_views(text)
    code_lines = code.splitlines()

    findings = []

    def report(rule, lineno, message):
        for at in (lineno, lineno - 1):
            entry = allows.get(at)
            if entry and entry[0] == rule:
                if entry[1] is None:
                    findings.append(
                        (relpath, at, "bad-suppression",
                         "allow(%s) needs a justification after the rule "
                         "name" % rule))
                return
        findings.append((relpath, lineno, rule, message))

    for rule, pattern in CODE_PATTERNS.items():
        if exempt(rule, relpath):
            continue
        for lineno, linetext in enumerate(code_lines, start=1):
            if pattern.search(linetext):
                report(rule, lineno, MESSAGES[rule])

    for lineno, content in strings:
        # File names ("store.cpp") fit the metric-name shape; skip them.
        if METRIC_RE.match(content) and \
                not content.endswith((".cpp", ".hpp", ".h", ".cc", ".py")):
            site = METRIC_SITES[content.split(".", 1)[0] + "."]
            if relpath != site:
                report("metric-literal", lineno,
                       'metric name "%s" outside its registration site %s'
                       % (content, site))
        elif content in TRACE_KEYS and relpath != TRACE_SITE:
            report("metric-literal", lineno,
                   'trace phase key "%s" outside the render site %s'
                   % (content, TRACE_SITE))
        elif content in SOLVE_LOG_KEYS and relpath != TRACE_SITE:
            report("metric-literal", lineno,
                   'solve-log key "%s" outside the render site %s'
                   % (content, TRACE_SITE))

    # Unknown rule names in allow() comments are errors too: a typo'd
    # suppression silently suppresses nothing.
    for lineno, (rule, _) in allows.items():
        if rule not in RULES:
            findings.append((relpath, lineno, "bad-suppression",
                             "allow(%s): unknown rule (known: %s)"
                             % (rule, ", ".join(RULES))))
    return findings


def target_files(root, paths):
    if paths:
        for p in paths:
            yield os.path.relpath(os.path.join(root, p), root) \
                if not os.path.isabs(p) else os.path.relpath(p, root)
        return
    src = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                yield os.path.relpath(os.path.join(dirpath, name), root)


def main(argv):
    ap = argparse.ArgumentParser(
        prog="rsat_lint.py",
        description="rsat repo invariant linter (rules: %s)" % ", ".join(
            RULES))
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    ap.add_argument("paths", nargs="*",
                    help="files to lint, relative to --root "
                         "(default: all of src/)")
    args = ap.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(root):
        print("rsat_lint: no such root: %s" % root, file=sys.stderr)
        return 2

    findings = []
    count = 0
    for relpath in target_files(root, args.paths):
        count += 1
        findings.extend(lint_file(root, relpath.replace(os.sep, "/")))

    findings.sort()
    for relpath, lineno, rule, message in findings:
        print("%s:%d: [%s] %s" % (relpath, lineno, rule, message))
    if findings:
        print("rsat_lint: %d finding(s) in %d file(s) scanned"
              % (len(findings), count), file=sys.stderr)
        return 1
    print("rsat_lint: clean (%d files scanned)" % count, file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
