// Batch analysis engine throughput: cold (empty cache, every request
// solved) vs warm (every request a fingerprint lookup) vs disk-restart
// (fresh process analogue: empty memory store over a pre-populated
// --cache-dir) on the standard kernel corpus, plus the fixed per-request
// costs (fingerprinting, protocol parse/render). The cold/warm gap is the
// reuse headroom the service layer buys; the acceptance bars are warm >=
// 2x cold, and a disk hit >= 5x faster than recompute.
//
// Two entry points share the scenario code:
//  * `bench_service [--benchmark_* ...]` runs the google-benchmark suite.
//  * `bench_service --json <path>` runs the curated scenario set once and
//    writes the machine-readable perf artifact (committed to the repo as
//    BENCH_service.json: cold/warm/disk/global-RS p50s, hit ratios, the
//    telemetry-overhead measurement, the portfolio-vs-fixed-engine
//    comparison, and the jobs=1 vs jobs=4 block-parallel globalrs pair).
//    In this mode the process exits nonzero if tracing a cold solve costs
//    more than kTelemetryOverheadBarPct ("telemetry stays off the hot
//    path"), if solve-log record collection regresses the untraced cold
//    path by more than the same bar ("the training corpus is free"), or if
//    the jobs=1 portfolio race is more than kPortfolioBarPct slower than
//    the best fixed proving engine ("the race harness is free").
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cfg/generators.hpp"
#include "ddg/canon.hpp"
#include "ddg/generators.hpp"
#include "ddg/kernels.hpp"
#include "service/engine.hpp"
#include "service/ops/analyze.hpp"
#include "service/ops/globalrs.hpp"
#include "service/ops/minreg.hpp"
#include "service/ops/reduce.hpp"
#include "service/ops/schedule.hpp"
#include "service/ops/spill.hpp"
#include "service/protocol.hpp"
#include "service/trace.hpp"
#include "support/fs.hpp"
#include "support/metrics.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

namespace {

using rs::service::AnalysisEngine;
using rs::service::EngineConfig;
using rs::service::Request;
using rs::service::Response;

// The "repeated corpus": every kernel analyzed and reduced, three times
// over, so even the cold pass contains intra-batch duplicates.
std::vector<Request> corpus_batch(int repeats) {
  std::vector<Request> batch;
  const auto corpus = rs::ddg::kernel_corpus(rs::ddg::superscalar_model());
  std::uint64_t id = 1;
  for (int r = 0; r < repeats; ++r) {
    for (const auto& [name, dag] : corpus) {
      Request a = rs::service::make_analyze_request(dag);
      a.id = id++;
      batch.push_back(std::move(a));
      Request red = rs::service::make_reduce_request(dag, {16, 16});
      red.id = id++;
      batch.push_back(std::move(red));
    }
  }
  return batch;
}

void drain(AnalysisEngine& engine, const std::vector<Request>& batch) {
  std::vector<std::future<Response>> futures;
  futures.reserve(batch.size());
  for (const Request& req : batch) futures.push_back(engine.submit(req));
  for (auto& f : futures) benchmark::DoNotOptimize(f.get().payload->ok);
}

void BM_BatchCold(benchmark::State& state) {
  const std::vector<Request> batch = corpus_batch(3);
  for (auto _ : state) {
    AnalysisEngine engine(EngineConfig{});  // fresh cache every iteration
    drain(engine, batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_BatchCold)->Unit(benchmark::kMillisecond);

void BM_BatchWarm(benchmark::State& state) {
  const std::vector<Request> batch = corpus_batch(3);
  AnalysisEngine engine(EngineConfig{});
  drain(engine, batch);  // pre-warm
  for (auto _ : state) {
    drain(engine, batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_BatchWarm)->Unit(benchmark::kMillisecond);

// The disk-tier scenario of the tiered ResultStore, measured as an
// apples-to-apples pair: each iteration is a process-restart analogue — a
// brand-new engine over the deduplicated corpus, driven synchronously
// (engine.run, no pool noise) — where BM_CorpusRecompute solves every
// request and BM_CorpusDiskRestart serves every request from a
// pre-populated --cache-dir (DiskStore read + decode + promote). The
// acceptance bar is a disk hit >= 5x faster than recompute.
void BM_CorpusRecompute(benchmark::State& state) {
  const std::vector<Request> batch = corpus_batch(1);
  for (auto _ : state) {
    AnalysisEngine engine(EngineConfig{});  // empty store: all solves
    for (const Request& req : batch) {
      benchmark::DoNotOptimize(engine.run(req).payload->ok);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_CorpusRecompute)->Unit(benchmark::kMillisecond);

void BM_CorpusDiskRestart(benchmark::State& state) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "rs_bench_disk_cache")
          .string();
  std::filesystem::remove_all(dir);
  const std::vector<Request> batch = corpus_batch(1);
  {
    EngineConfig seed;
    seed.cache_dir = dir;
    AnalysisEngine engine(seed);
    drain(engine, batch);  // populate the persistent tier
  }
  std::uint64_t disk_hits = 0;
  for (auto _ : state) {
    EngineConfig cfg;
    cfg.cache_dir = dir;
    AnalysisEngine engine(cfg);  // fresh memory tier: disk must serve
    for (const Request& req : batch) {
      benchmark::DoNotOptimize(engine.run(req).payload->ok);
    }
    disk_hits += engine.stats().disk_hits;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
  state.counters["disk_hits/iter"] =
      static_cast<double>(disk_hits) /
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CorpusDiskRestart)->Unit(benchmark::kMillisecond);

// Warm-path throughput of the three registry-opened workloads (minreg,
// spill, schedule): one cold solve up front, then every lookup is a
// memory-tier hit — the operation dispatch itself must stay off the hot
// path.
void BM_NewOpsWarm(benchmark::State& state) {
  AnalysisEngine engine(EngineConfig{});
  const auto dag =
      rs::ddg::build_kernel("lin-ddot", rs::ddg::superscalar_model());
  std::vector<Request> batch;
  batch.push_back(rs::service::make_minreg_request(dag));
  batch.push_back(rs::service::make_spill_request(dag, {2, 2}));
  batch.push_back(rs::service::make_schedule_request(dag));
  drain(engine, batch);  // populate the cache
  for (auto _ : state) {
    for (const Request& req : batch) {
      benchmark::DoNotOptimize(engine.run(req).payload->ok);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_NewOpsWarm)->Unit(benchmark::kMicrosecond);

// Program-payload path: cold global-RS over the built-in program corpus
// vs warm (cfg::canon fingerprint lookup only). The warm/cold gap is what
// the program fingerprint buys whole-program workloads.
void BM_GlobalRsCold(benchmark::State& state) {
  std::vector<Request> batch;
  for (const std::string& name : rs::cfg::program_names()) {
    batch.push_back(rs::service::make_globalrs_request(
        std::make_shared<rs::cfg::Cfg>(
            rs::cfg::build_program(name, rs::ddg::superscalar_model()))));
  }
  for (auto _ : state) {
    AnalysisEngine engine(EngineConfig{});
    drain(engine, batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_GlobalRsCold)->Unit(benchmark::kMillisecond);

void BM_GlobalRsWarm(benchmark::State& state) {
  AnalysisEngine engine(EngineConfig{});
  std::vector<Request> batch;
  for (const std::string& name : rs::cfg::program_names()) {
    batch.push_back(rs::service::make_globalrs_request(
        std::make_shared<rs::cfg::Cfg>(
            rs::cfg::build_program(name, rs::ddg::superscalar_model()))));
  }
  drain(engine, batch);  // populate the cache
  for (auto _ : state) {
    for (const Request& req : batch) {
      benchmark::DoNotOptimize(engine.run(req).payload->ok);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_GlobalRsWarm)->Unit(benchmark::kMicrosecond);

void BM_CancellationDrain(benchmark::State& state) {
  // Drain latency for the cancel path: submit a batch of budgeted slow
  // solves (dense layered DAGs whose exact RS search would run far past the
  // budget), cancel half of them mid-flight, then measure how long it takes
  // for every future to resolve. The cancelled half should come back at
  // poll latency, not at budget expiry.
  std::vector<Request> batch;
  for (std::uint64_t id = 1; id <= 8; ++id) {
    rs::support::Rng rng(id * 97);
    rs::ddg::LayeredDagParams p;
    p.layers = 6;
    p.min_width = 4;
    p.max_width = 6;
    p.edge_prob = 0.8;
    Request req = rs::service::make_analyze_request(
        rs::ddg::random_layered(rng, rs::ddg::superscalar_model(), p));
    req.id = id;
    req.budget_seconds = 0.25;
    batch.push_back(std::move(req));
  }
  double drain_ms = 0, cancelled = 0;
  for (auto _ : state) {
    AnalysisEngine engine(EngineConfig{});
    std::vector<std::future<Response>> futs;
    futs.reserve(batch.size());
    for (const Request& r : batch) futs.push_back(engine.submit(r));
    for (std::uint64_t id = 2; id <= 8; id += 2) engine.cancel(id);
    const rs::support::Timer drain;
    for (auto& f : futs) {
      const Response resp = f.get();
      cancelled += resp.payload->stats.stop ==
                   rs::support::StopCause::Cancelled;
    }
    drain_ms += drain.millis();
  }
  state.counters["drain_ms/iter"] =
      drain_ms / static_cast<double>(state.iterations());
  state.counters["cancelled/iter"] =
      cancelled / static_cast<double>(state.iterations());
}
BENCHMARK(BM_CancellationDrain)->Unit(benchmark::kMillisecond);

void BM_FingerprintCorpus(benchmark::State& state) {
  const auto corpus = rs::ddg::kernel_corpus(rs::ddg::superscalar_model());
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const auto& [name, dag] : corpus) {
      acc ^= rs::ddg::fingerprint(dag).lo;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(corpus.size()));
}
BENCHMARK(BM_FingerprintCorpus)->Unit(benchmark::kMicrosecond);

void BM_ProtocolParseRender(benchmark::State& state) {
  AnalysisEngine engine(EngineConfig{});
  Request req = rs::service::parse_request_line(
      "analyze kernel=lin-ddot engine=greedy", 1);
  const Response resp = engine.run(req);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::service::parse_request_line(
        "reduce kernel=fir8 limits=16,16 budget=5", 2));
    benchmark::DoNotOptimize(rs::service::render_response(resp));
  }
}
BENCHMARK(BM_ProtocolParseRender)->Unit(benchmark::kMicrosecond);

// --- curated --json mode: the committed BENCH_service.json artifact -----

/// Instrumented-vs-uninstrumented cold-solve regression bar (percent).
constexpr double kTelemetryOverheadBarPct = 5.0;

double p50_of(std::vector<double> samples) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Drives `batch` synchronously through `engine` (no pool noise), appending
/// one wall-clock latency sample per request. When `sink` is non-null the
/// engine runs with trace spans on and every span is written — the fully
/// instrumented path the overhead bar compares against. `slog_sink` is the
/// solve-log analogue: every record rendered and written.
void run_batch_timed(AnalysisEngine& engine, const std::vector<Request>& batch,
                     std::vector<double>* ms, rs::service::TraceSink* sink,
                     rs::service::TraceSink* slog_sink = nullptr) {
  for (const Request& req : batch) {
    const rs::support::Timer t;
    const Response resp = engine.run(req);
    benchmark::DoNotOptimize(resp.payload->ok);
    if (sink != nullptr && resp.trace != nullptr) sink->write(*resp.trace);
    if (slog_sink != nullptr && resp.solve_log != nullptr) {
      slog_sink->write_line(rs::service::render_solve_log_json(
          *resp.solve_log, rs::support::unix_now_seconds()));
    }
    if (ms != nullptr) ms->push_back(t.millis());
  }
}

/// Nanoseconds per call of `fn`, amortized over `iters` calls.
template <typename Fn>
double ns_per_op(int iters, Fn fn) {
  const rs::support::Timer t;
  for (int i = 0; i < iters; ++i) fn();
  return t.seconds() * 1e9 / iters;
}

int run_curated_json(const std::string& out_path) {
  constexpr int kRounds = 5;
  const std::vector<Request> corpus = corpus_batch(1);
  std::vector<Request> programs;
  for (const std::string& name : rs::cfg::program_names()) {
    programs.push_back(rs::service::make_globalrs_request(
        std::make_shared<rs::cfg::Cfg>(
            rs::cfg::build_program(name, rs::ddg::superscalar_model()))));
  }

  // Cold / warm: fresh engine per cold round; the warm rounds replay the
  // same batch against the last engine's populated memory tier.
  std::vector<double> cold_ms, warm_ms;
  double warm_hit_rate = 0;
  for (int r = 0; r < kRounds; ++r) {
    AnalysisEngine engine(EngineConfig{});
    run_batch_timed(engine, corpus, &cold_ms, nullptr);
    const std::uint64_t before = engine.stats().completed;
    for (int w = 0; w < 2; ++w) run_batch_timed(engine, corpus, &warm_ms,
                                                nullptr);
    const rs::service::EngineStats st = engine.stats();
    // Hit rate of the warm replays alone (the cold pass already took its
    // misses): hits gained / requests replayed.
    warm_hit_rate += static_cast<double>(st.cache_hits + st.coalesced) /
                     static_cast<double>(st.completed - before);
  }
  warm_hit_rate /= kRounds;

  // Disk restart vs recompute: both are brand-new engines over the same
  // deduplicated corpus; one reads a pre-populated --cache-dir, the other
  // solves everything.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "rs_bench_json_disk").string();
  std::filesystem::remove_all(dir);
  {
    EngineConfig seed;
    seed.cache_dir = dir;
    AnalysisEngine engine(seed);
    run_batch_timed(engine, corpus, nullptr, nullptr);
  }
  std::vector<double> disk_ms, recompute_ms;
  double disk_hit_ratio = 0;
  for (int r = 0; r < kRounds; ++r) {
    {
      EngineConfig cfg;
      cfg.cache_dir = dir;
      AnalysisEngine engine(cfg);
      run_batch_timed(engine, corpus, &disk_ms, nullptr);
      const rs::service::EngineStats st = engine.stats();
      disk_hit_ratio += static_cast<double>(st.disk_hits) /
                        static_cast<double>(st.completed);
    }
    AnalysisEngine engine(EngineConfig{});
    run_batch_timed(engine, corpus, &recompute_ms, nullptr);
  }
  disk_hit_ratio /= kRounds;
  std::filesystem::remove_all(dir);

  // Global RS (program payloads): cold per round, then warm replays.
  std::vector<double> grs_cold_ms, grs_warm_ms;
  for (int r = 0; r < kRounds; ++r) {
    AnalysisEngine engine(EngineConfig{});
    run_batch_timed(engine, programs, &grs_cold_ms, nullptr);
    run_batch_timed(engine, programs, &grs_warm_ms, nullptr);
  }

  // Telemetry overhead: identical cold workloads, one with trace spans off
  // (registry counters and the solver-interior profile still on — they are
  // unconditional), one with spans on and every span rendered + written to
  // a real sink. Rounds alternate so drift hits both arms equally; one
  // sample per round = the whole batch's wall time (per-request samples
  // over the mixed-size corpus are bimodal and gate on a coin flip — see
  // the portfolio section).
  constexpr int kOverheadRounds = 25;
  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "rs_bench_trace.jsonl")
          .string();
  std::vector<double> plain_ms, traced_ms;
  for (int r = -1; r < kOverheadRounds; ++r) {
    {
      AnalysisEngine engine(EngineConfig{});
      const rs::support::Timer t;
      run_batch_timed(engine, corpus, nullptr, nullptr);
      if (r >= 0) plain_ms.push_back(t.millis());
    }
    {
      EngineConfig cfg;
      cfg.trace = true;
      AnalysisEngine engine(cfg);
      rs::service::TraceSink::Config tc;
      tc.path = trace_path;
      rs::service::TraceSink sink(tc);
      const rs::support::Timer t;
      run_batch_timed(engine, corpus, nullptr, &sink);
      if (r >= 0) traced_ms.push_back(t.millis());
    }
  }
  std::filesystem::remove(trace_path);
  const double plain_p50 = p50_of(plain_ms);
  const double traced_p50 = p50_of(traced_ms);
  const double overhead_pct =
      plain_p50 > 0 ? 100.0 * (traced_p50 - plain_p50) / plain_p50 : 0;
  const bool within_bar = overhead_pct < kTelemetryOverheadBarPct;

  // Solve-log overhead: the same alternating whole-batch design, logging
  // off vs on (feature extraction + record render + write to a real sink).
  // The log is the training corpus for adaptive strategy prediction; it
  // only stays in production deployments if it is free on the untraced
  // path.
  constexpr int kSolveLogRounds = kOverheadRounds;
  const std::string slog_path =
      (std::filesystem::temp_directory_path() / "rs_bench_slog.jsonl")
          .string();
  std::vector<double> slog_off_ms, slog_on_ms;
  for (int r = -1; r < kSolveLogRounds; ++r) {
    {
      AnalysisEngine engine(EngineConfig{});
      const rs::support::Timer t;
      run_batch_timed(engine, corpus, nullptr, nullptr);
      if (r >= 0) slog_off_ms.push_back(t.millis());
    }
    {
      EngineConfig cfg;
      cfg.solve_log = true;
      AnalysisEngine engine(cfg);
      rs::service::TraceSink::Config sc;
      sc.path = slog_path;
      rs::service::TraceSink sink(sc);
      const rs::support::Timer t;
      run_batch_timed(engine, corpus, nullptr, nullptr, &sink);
      if (r >= 0) slog_on_ms.push_back(t.millis());
    }
  }
  std::filesystem::remove(slog_path);
  const double slog_off_p50 = p50_of(slog_off_ms);
  const double slog_on_p50 = p50_of(slog_on_ms);
  const double slog_overhead_pct =
      slog_off_p50 > 0 ? 100.0 * (slog_on_p50 - slog_off_p50) / slog_off_p50
                       : 0;
  const bool slog_within_bar = slog_overhead_pct < kTelemetryOverheadBarPct;

  // Portfolio vs fixed engines, two measurements with distinct jobs.
  //
  // (1) Informational micro section: all five arms on the two kernels where
  // every proving engine converges fast (on the larger corpus kernels the
  // ILP runs into its budget, which would measure the budget, not the
  // race). These solves are tens of microseconds, so the numbers carry
  // predecessor-arm cache pollution of the same order as the race setup
  // cost itself — report them, never gate on them. The jobs=4 race in
  // particular: on a 1-hardware-thread host the racing losers share the
  // winner's core, so its latency measures contention, not speedup.
  // One sample per round = the whole batch's wall time (per-request samples
  // across kernels of different sizes make a bimodal distribution whose
  // median sits on the mode boundary — a coin flip at small sample counts).
  const char* kPortfolioKernels[] = {"lin-ddot", "lin-dscal"};
  std::vector<double> greedy_ms, exact_ms, ilp_ms, race1_ms, race4_ms;
  const auto engine_batch = [](const char** kernels, std::size_t n,
                               const char* engine, int jobs) {
    std::vector<Request> batch;
    std::uint64_t id = 1;
    for (std::size_t i = 0; i < n; ++i) {
      std::string line = std::string("analyze kernel=") + kernels[i] +
                         " engine=" + engine;
      if (jobs > 0) line += " jobs=" + std::to_string(jobs);
      batch.push_back(rs::service::parse_request_line(line, id++));
    }
    return batch;
  };
  constexpr int kPortfolioRounds = 25;
  const struct {
    const char* engine;
    int jobs;
    std::vector<double>* ms;
  } arms[] = {{"greedy", 0, &greedy_ms},
              {"exact", 0, &exact_ms},
              {"ilp", 0, &ilp_ms},
              {"portfolio", 1, &race1_ms},
              {"portfolio", 4, &race4_ms}};
  for (int r = -1; r < kPortfolioRounds; ++r) {
    for (const auto& arm : arms) {
      EngineConfig cfg;
      cfg.threads = 4;
      AnalysisEngine engine(cfg);  // fresh cache: every request computes
      const rs::support::Timer t;
      run_batch_timed(engine,
                      engine_batch(kPortfolioKernels,
                                   std::size(kPortfolioKernels), arm.engine,
                                   arm.jobs),
                      nullptr, nullptr);
      if (r >= 0) arm.ms->push_back(t.millis());
    }
  }
  const double exact_p50 = p50_of(exact_ms);
  const double ilp_p50 = p50_of(ilp_ms);
  // Greedy is excluded from the fixed baseline: its answers are unproven
  // estimates, not the same deliverable the portfolio guarantees.
  const double best_fixed_p50 = std::min(exact_p50, ilp_p50);
  const double race1_p50 = p50_of(race1_ms);

  // (2) The gated regression bar, on kernels big enough to represent real
  // requests (exact solves in hundreds of microseconds, so a microsecond of
  // race setup is noise, not a percentage). On these kernels the exact
  // combinatorial engine IS the best fixed proving strategy: greedy is
  // unproven and the ILP cannot prove within any sane budget (the micro
  // section above shows it ~30x slower even on its friendliest kernels).
  // The two gated arms strictly alternate so each one's only predecessor is
  // the other — identical cache/allocator pollution on both sides — and two
  // warm-up rounds flush the earlier arms' state before sampling starts.
  const char* kGatedKernels[] = {"fir8", "liv-loop7"};
  std::vector<double> gated_exact_ms, gated_race_ms;
  for (int r = -2; r < kPortfolioRounds; ++r) {
    for (const bool portfolio : {false, true}) {
      EngineConfig cfg;
      cfg.threads = 4;
      AnalysisEngine engine(cfg);
      const rs::support::Timer t;
      run_batch_timed(engine,
                      engine_batch(kGatedKernels, std::size(kGatedKernels),
                                   portfolio ? "portfolio" : "exact",
                                   portfolio ? 1 : 0),
                      nullptr, nullptr);
      if (r >= 0) {
        (portfolio ? &gated_race_ms : &gated_exact_ms)->push_back(t.millis());
      }
    }
  }
  constexpr double kPortfolioBarPct = 5.0;
  const double gated_exact_p50 = p50_of(gated_exact_ms);
  const double gated_race_p50 = p50_of(gated_race_ms);
  const bool portfolio_within_bar =
      gated_race_p50 <= gated_exact_p50 * (1.0 + kPortfolioBarPct / 100.0);

  // Intra-request block parallelism: the same cold globalrs solve of a
  // 4-block program at jobs=1 vs jobs=4 on a 4-worker engine. On hosts
  // with >= 4 hardware threads the speedup approaches the block count;
  // hardware_threads is recorded so consumers can judge the number.
  std::vector<double> grs_jobs1_ms, grs_jobs4_ms;
  for (int r = 0; r < kPortfolioRounds; ++r) {
    for (int jobs : {1, 4}) {
      EngineConfig cfg;
      cfg.threads = 4;
      AnalysisEngine engine(cfg);
      const std::string line =
          "globalrs prog=diamond jobs=" + std::to_string(jobs);
      std::vector<Request> one{rs::service::parse_request_line(line, 1)};
      run_batch_timed(engine, one, jobs == 1 ? &grs_jobs1_ms : &grs_jobs4_ms,
                      nullptr);
    }
  }
  const double grs_jobs1_p50 = p50_of(grs_jobs1_ms);
  const double grs_jobs4_p50 = p50_of(grs_jobs4_ms);

  // Primitive costs, to substantiate the always-on registry's budget.
  rs::support::MetricsRegistry reg;
  rs::support::Counter& c = reg.counter("bench.c");
  rs::support::Histogram& h = reg.histogram("bench.h");
  const double counter_ns = ns_per_op(1000000, [&] { c.inc(); });
  const double histogram_ns = ns_per_op(1000000, [&] { h.observe(1.25); });

  const auto f = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4f", v);
    return std::string(buf);
  };
  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"bench_service\",\n"
     << "  \"rounds\": " << kRounds << ",\n"
     << "  \"corpus_requests\": " << corpus.size() << ",\n"
     << "  \"program_requests\": " << programs.size() << ",\n"
     << "  \"cold_p50_ms\": " << f(p50_of(cold_ms)) << ",\n"
     << "  \"warm_p50_ms\": " << f(p50_of(warm_ms)) << ",\n"
     << "  \"recompute_p50_ms\": " << f(p50_of(recompute_ms)) << ",\n"
     << "  \"disk_p50_ms\": " << f(p50_of(disk_ms)) << ",\n"
     << "  \"globalrs_cold_p50_ms\": " << f(p50_of(grs_cold_ms)) << ",\n"
     << "  \"globalrs_warm_p50_ms\": " << f(p50_of(grs_warm_ms)) << ",\n"
     << "  \"warm_hit_rate\": " << f(warm_hit_rate) << ",\n"
     << "  \"disk_hit_ratio\": " << f(disk_hit_ratio) << ",\n"
     << "  \"portfolio\": {\n"
     << "    \"rounds\": " << kPortfolioRounds << ",\n"
     << "    \"micro_kernels\": \"lin-ddot,lin-dscal\",\n"
     << "    \"greedy_p50_ms\": " << f(p50_of(greedy_ms)) << ",\n"
     << "    \"exact_p50_ms\": " << f(exact_p50) << ",\n"
     << "    \"ilp_p50_ms\": " << f(ilp_p50) << ",\n"
     << "    \"best_fixed_p50_ms\": " << f(best_fixed_p50) << ",\n"
     << "    \"portfolio_p50_ms\": " << f(race1_p50) << ",\n"
     << "    \"portfolio_jobs4_p50_ms\": " << f(p50_of(race4_ms)) << ",\n"
     << "    \"gated_kernels\": \"fir8,liv-loop7\",\n"
     << "    \"gated_exact_p50_ms\": " << f(gated_exact_p50) << ",\n"
     << "    \"gated_portfolio_p50_ms\": " << f(gated_race_p50) << ",\n"
     << "    \"bar_pct\": " << f(kPortfolioBarPct) << ",\n"
     << "    \"within_bar\": " << (portfolio_within_bar ? "true" : "false")
     << "\n"
     << "  },\n"
     << "  \"parallel\": {\n"
     << "    \"program\": \"diamond\",\n"
     << "    \"blocks\": 4,\n"
     << "    \"engine_threads\": 4,\n"
     << "    \"hardware_threads\": "
     << std::thread::hardware_concurrency() << ",\n"
     << "    \"globalrs_jobs1_p50_ms\": " << f(grs_jobs1_p50) << ",\n"
     << "    \"globalrs_jobs4_p50_ms\": " << f(grs_jobs4_p50) << ",\n"
     << "    \"speedup\": "
     << f(grs_jobs4_p50 > 0 ? grs_jobs1_p50 / grs_jobs4_p50 : 0) << "\n"
     << "  },\n"
     << "  \"telemetry\": {\n"
     << "    \"rounds\": " << kOverheadRounds << ",\n"
     << "    \"plain_cold_batch_p50_ms\": " << f(plain_p50) << ",\n"
     << "    \"traced_cold_batch_p50_ms\": " << f(traced_p50) << ",\n"
     << "    \"overhead_pct\": " << f(overhead_pct) << ",\n"
     << "    \"bar_pct\": " << f(kTelemetryOverheadBarPct) << ",\n"
     << "    \"within_bar\": " << (within_bar ? "true" : "false") << ",\n"
     << "    \"counter_inc_ns\": " << f(counter_ns) << ",\n"
     << "    \"histogram_observe_ns\": " << f(histogram_ns) << "\n"
     << "  },\n"
     << "  \"solve_log\": {\n"
     << "    \"rounds\": " << kSolveLogRounds << ",\n"
     << "    \"off_cold_batch_p50_ms\": " << f(slog_off_p50) << ",\n"
     << "    \"on_cold_batch_p50_ms\": " << f(slog_on_p50) << ",\n"
     << "    \"overhead_pct\": " << f(slog_overhead_pct) << ",\n"
     << "    \"bar_pct\": " << f(kTelemetryOverheadBarPct) << ",\n"
     << "    \"within_bar\": " << (slog_within_bar ? "true" : "false") << "\n"
     << "  }\n"
     << "}\n";
  if (!rs::support::write_file_atomic(out_path, os.str())) {
    std::fprintf(stderr, "bench_service: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "bench_service: wrote %s\n", out_path.c_str());
  std::fprintf(stderr,
               "telemetry overhead: cold batch p50 %.4f ms plain vs %.4f ms "
               "traced "
               "(%+.2f%%, bar %.1f%%) -> %s\n",
               plain_p50, traced_p50, overhead_pct, kTelemetryOverheadBarPct,
               within_bar ? "OK" : "FAIL");
  std::fprintf(stderr,
               "solve log overhead: cold batch p50 %.4f ms off vs %.4f ms on "
               "(%+.2f%%, bar %.1f%%) -> %s\n",
               slog_off_p50, slog_on_p50, slog_overhead_pct,
               kTelemetryOverheadBarPct, slog_within_bar ? "OK" : "FAIL");
  std::fprintf(stderr,
               "portfolio: gated p50 %.4f ms vs exact %.4f ms (bar +%.1f%%) "
               "-> %s\n",
               gated_race_p50, gated_exact_p50, kPortfolioBarPct,
               portfolio_within_bar ? "OK" : "FAIL");
  return within_bar && slog_within_bar && portfolio_within_bar ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      return run_curated_json(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
