// Batch analysis engine throughput: cold (empty cache, every request
// solved) vs warm (every request a fingerprint lookup) vs disk-restart
// (fresh process analogue: empty memory store over a pre-populated
// --cache-dir) on the standard kernel corpus, plus the fixed per-request
// costs (fingerprinting, protocol parse/render). The cold/warm gap is the
// reuse headroom the service layer buys; the acceptance bars are warm >=
// 2x cold, and a disk hit >= 5x faster than recompute.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <future>
#include <vector>

#include "cfg/generators.hpp"
#include "ddg/canon.hpp"
#include "ddg/generators.hpp"
#include "ddg/kernels.hpp"
#include "service/engine.hpp"
#include "service/ops/analyze.hpp"
#include "service/ops/globalrs.hpp"
#include "service/ops/minreg.hpp"
#include "service/ops/reduce.hpp"
#include "service/ops/schedule.hpp"
#include "service/ops/spill.hpp"
#include "service/protocol.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

namespace {

using rs::service::AnalysisEngine;
using rs::service::EngineConfig;
using rs::service::Request;
using rs::service::Response;

// The "repeated corpus": every kernel analyzed and reduced, three times
// over, so even the cold pass contains intra-batch duplicates.
std::vector<Request> corpus_batch(int repeats) {
  std::vector<Request> batch;
  const auto corpus = rs::ddg::kernel_corpus(rs::ddg::superscalar_model());
  std::uint64_t id = 1;
  for (int r = 0; r < repeats; ++r) {
    for (const auto& [name, dag] : corpus) {
      Request a = rs::service::make_analyze_request(dag);
      a.id = id++;
      batch.push_back(std::move(a));
      Request red = rs::service::make_reduce_request(dag, {16, 16});
      red.id = id++;
      batch.push_back(std::move(red));
    }
  }
  return batch;
}

void drain(AnalysisEngine& engine, const std::vector<Request>& batch) {
  std::vector<std::future<Response>> futures;
  futures.reserve(batch.size());
  for (const Request& req : batch) futures.push_back(engine.submit(req));
  for (auto& f : futures) benchmark::DoNotOptimize(f.get().payload->ok);
}

void BM_BatchCold(benchmark::State& state) {
  const std::vector<Request> batch = corpus_batch(3);
  for (auto _ : state) {
    AnalysisEngine engine(EngineConfig{});  // fresh cache every iteration
    drain(engine, batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_BatchCold)->Unit(benchmark::kMillisecond);

void BM_BatchWarm(benchmark::State& state) {
  const std::vector<Request> batch = corpus_batch(3);
  AnalysisEngine engine(EngineConfig{});
  drain(engine, batch);  // pre-warm
  for (auto _ : state) {
    drain(engine, batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_BatchWarm)->Unit(benchmark::kMillisecond);

// The disk-tier scenario of the tiered ResultStore, measured as an
// apples-to-apples pair: each iteration is a process-restart analogue — a
// brand-new engine over the deduplicated corpus, driven synchronously
// (engine.run, no pool noise) — where BM_CorpusRecompute solves every
// request and BM_CorpusDiskRestart serves every request from a
// pre-populated --cache-dir (DiskStore read + decode + promote). The
// acceptance bar is a disk hit >= 5x faster than recompute.
void BM_CorpusRecompute(benchmark::State& state) {
  const std::vector<Request> batch = corpus_batch(1);
  for (auto _ : state) {
    AnalysisEngine engine(EngineConfig{});  // empty store: all solves
    for (const Request& req : batch) {
      benchmark::DoNotOptimize(engine.run(req).payload->ok);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_CorpusRecompute)->Unit(benchmark::kMillisecond);

void BM_CorpusDiskRestart(benchmark::State& state) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "rs_bench_disk_cache")
          .string();
  std::filesystem::remove_all(dir);
  const std::vector<Request> batch = corpus_batch(1);
  {
    EngineConfig seed;
    seed.cache_dir = dir;
    AnalysisEngine engine(seed);
    drain(engine, batch);  // populate the persistent tier
  }
  std::uint64_t disk_hits = 0;
  for (auto _ : state) {
    EngineConfig cfg;
    cfg.cache_dir = dir;
    AnalysisEngine engine(cfg);  // fresh memory tier: disk must serve
    for (const Request& req : batch) {
      benchmark::DoNotOptimize(engine.run(req).payload->ok);
    }
    disk_hits += engine.stats().disk_hits;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
  state.counters["disk_hits/iter"] =
      static_cast<double>(disk_hits) /
      static_cast<double>(std::max<std::int64_t>(1, state.iterations()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CorpusDiskRestart)->Unit(benchmark::kMillisecond);

// Warm-path throughput of the three registry-opened workloads (minreg,
// spill, schedule): one cold solve up front, then every lookup is a
// memory-tier hit — the operation dispatch itself must stay off the hot
// path.
void BM_NewOpsWarm(benchmark::State& state) {
  AnalysisEngine engine(EngineConfig{});
  const auto dag =
      rs::ddg::build_kernel("lin-ddot", rs::ddg::superscalar_model());
  std::vector<Request> batch;
  batch.push_back(rs::service::make_minreg_request(dag));
  batch.push_back(rs::service::make_spill_request(dag, {2, 2}));
  batch.push_back(rs::service::make_schedule_request(dag));
  drain(engine, batch);  // populate the cache
  for (auto _ : state) {
    for (const Request& req : batch) {
      benchmark::DoNotOptimize(engine.run(req).payload->ok);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_NewOpsWarm)->Unit(benchmark::kMicrosecond);

// Program-payload path: cold global-RS over the built-in program corpus
// vs warm (cfg::canon fingerprint lookup only). The warm/cold gap is what
// the program fingerprint buys whole-program workloads.
void BM_GlobalRsCold(benchmark::State& state) {
  std::vector<Request> batch;
  for (const std::string& name : rs::cfg::program_names()) {
    batch.push_back(rs::service::make_globalrs_request(
        std::make_shared<rs::cfg::Cfg>(
            rs::cfg::build_program(name, rs::ddg::superscalar_model()))));
  }
  for (auto _ : state) {
    AnalysisEngine engine(EngineConfig{});
    drain(engine, batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_GlobalRsCold)->Unit(benchmark::kMillisecond);

void BM_GlobalRsWarm(benchmark::State& state) {
  AnalysisEngine engine(EngineConfig{});
  std::vector<Request> batch;
  for (const std::string& name : rs::cfg::program_names()) {
    batch.push_back(rs::service::make_globalrs_request(
        std::make_shared<rs::cfg::Cfg>(
            rs::cfg::build_program(name, rs::ddg::superscalar_model()))));
  }
  drain(engine, batch);  // populate the cache
  for (auto _ : state) {
    for (const Request& req : batch) {
      benchmark::DoNotOptimize(engine.run(req).payload->ok);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_GlobalRsWarm)->Unit(benchmark::kMicrosecond);

void BM_CancellationDrain(benchmark::State& state) {
  // Drain latency for the cancel path: submit a batch of budgeted slow
  // solves (dense layered DAGs whose exact RS search would run far past the
  // budget), cancel half of them mid-flight, then measure how long it takes
  // for every future to resolve. The cancelled half should come back at
  // poll latency, not at budget expiry.
  std::vector<Request> batch;
  for (std::uint64_t id = 1; id <= 8; ++id) {
    rs::support::Rng rng(id * 97);
    rs::ddg::LayeredDagParams p;
    p.layers = 6;
    p.min_width = 4;
    p.max_width = 6;
    p.edge_prob = 0.8;
    Request req = rs::service::make_analyze_request(
        rs::ddg::random_layered(rng, rs::ddg::superscalar_model(), p));
    req.id = id;
    req.budget_seconds = 0.25;
    batch.push_back(std::move(req));
  }
  double drain_ms = 0, cancelled = 0;
  for (auto _ : state) {
    AnalysisEngine engine(EngineConfig{});
    std::vector<std::future<Response>> futs;
    futs.reserve(batch.size());
    for (const Request& r : batch) futs.push_back(engine.submit(r));
    for (std::uint64_t id = 2; id <= 8; id += 2) engine.cancel(id);
    const rs::support::Timer drain;
    for (auto& f : futs) {
      const Response resp = f.get();
      cancelled += resp.payload->stats.stop ==
                   rs::support::StopCause::Cancelled;
    }
    drain_ms += drain.millis();
  }
  state.counters["drain_ms/iter"] =
      drain_ms / static_cast<double>(state.iterations());
  state.counters["cancelled/iter"] =
      cancelled / static_cast<double>(state.iterations());
}
BENCHMARK(BM_CancellationDrain)->Unit(benchmark::kMillisecond);

void BM_FingerprintCorpus(benchmark::State& state) {
  const auto corpus = rs::ddg::kernel_corpus(rs::ddg::superscalar_model());
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const auto& [name, dag] : corpus) {
      acc ^= rs::ddg::fingerprint(dag).lo;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(corpus.size()));
}
BENCHMARK(BM_FingerprintCorpus)->Unit(benchmark::kMicrosecond);

void BM_ProtocolParseRender(benchmark::State& state) {
  AnalysisEngine engine(EngineConfig{});
  Request req = rs::service::parse_request_line(
      "analyze kernel=lin-ddot engine=greedy", 1);
  const Response resp = engine.run(req);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::service::parse_request_line(
        "reduce kernel=fir8 limits=16,16 budget=5", 2));
    benchmark::DoNotOptimize(rs::service::render_response(resp));
  }
}
BENCHMARK(BM_ProtocolParseRender)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
