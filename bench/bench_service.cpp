// Batch analysis engine throughput: cold (empty cache, every request
// solved) vs warm (every request a fingerprint lookup) on the standard
// kernel corpus, plus the fixed per-request costs (fingerprinting, protocol
// parse/render). The cold/warm gap is the reuse headroom the service layer
// buys; the acceptance bar is warm >= 2x cold on a repeated corpus.
#include <benchmark/benchmark.h>

#include <future>
#include <vector>

#include "ddg/canon.hpp"
#include "ddg/kernels.hpp"
#include "service/engine.hpp"
#include "service/protocol.hpp"

namespace {

using rs::service::AnalysisEngine;
using rs::service::EngineConfig;
using rs::service::Request;
using rs::service::RequestKind;
using rs::service::Response;

// The "repeated corpus": every kernel analyzed and reduced, three times
// over, so even the cold pass contains intra-batch duplicates.
std::vector<Request> corpus_batch(int repeats) {
  std::vector<Request> batch;
  const auto corpus = rs::ddg::kernel_corpus(rs::ddg::superscalar_model());
  std::uint64_t id = 1;
  for (int r = 0; r < repeats; ++r) {
    for (const auto& [name, dag] : corpus) {
      Request a;
      a.id = id++;
      a.kind = RequestKind::Analyze;
      a.ddg = dag;
      batch.push_back(a);
      Request red;
      red.id = id++;
      red.kind = RequestKind::Reduce;
      red.ddg = dag;
      red.limits = {16, 16};
      batch.push_back(red);
    }
  }
  return batch;
}

void drain(AnalysisEngine& engine, const std::vector<Request>& batch) {
  std::vector<std::future<Response>> futures;
  futures.reserve(batch.size());
  for (const Request& req : batch) futures.push_back(engine.submit(req));
  for (auto& f : futures) benchmark::DoNotOptimize(f.get().payload->ok);
}

void BM_BatchCold(benchmark::State& state) {
  const std::vector<Request> batch = corpus_batch(3);
  for (auto _ : state) {
    AnalysisEngine engine(EngineConfig{});  // fresh cache every iteration
    drain(engine, batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_BatchCold)->Unit(benchmark::kMillisecond);

void BM_BatchWarm(benchmark::State& state) {
  const std::vector<Request> batch = corpus_batch(3);
  AnalysisEngine engine(EngineConfig{});
  drain(engine, batch);  // pre-warm
  for (auto _ : state) {
    drain(engine, batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_BatchWarm)->Unit(benchmark::kMillisecond);

void BM_FingerprintCorpus(benchmark::State& state) {
  const auto corpus = rs::ddg::kernel_corpus(rs::ddg::superscalar_model());
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const auto& [name, dag] : corpus) {
      acc ^= rs::ddg::fingerprint(dag).lo;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(corpus.size()));
}
BENCHMARK(BM_FingerprintCorpus)->Unit(benchmark::kMicrosecond);

void BM_ProtocolParseRender(benchmark::State& state) {
  AnalysisEngine engine(EngineConfig{});
  Request req = rs::service::parse_request_line(
      "analyze kernel=lin-ddot engine=greedy", 1);
  const Response resp = engine.run(req);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::service::parse_request_line(
        "reduce kernel=fir8 limits=16,16 budget=5", 2));
    benchmark::DoNotOptimize(rs::service::render_response(resp));
  }
}
BENCHMARK(BM_ProtocolParseRender)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
