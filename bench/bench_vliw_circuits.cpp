// EXP-6 — Section 4's VLIW caveat: optimal RS reduction with visible
// read/write offsets may produce extensions with (non-positive) circuits,
// which "violate the DAG property" and must be eliminated by requiring a
// topological sort to exist.
//
// This binary measures, on the VLIW corpus, how often minimum-makespan
// witness schedules would induce a cyclic extension when the guard is OFF,
// and verifies that with the guard ON every produced extension is acyclic
// and positive-circuit-free.
#include <cstdio>
#include <string>

#include "core/reduce.hpp"
#include "core/rs_exact.hpp"
#include "core/src_solver.hpp"
#include "ddg/kernels.hpp"
#include "graph/topo.hpp"
#include "support/table.hpp"

int main() {
  const auto corpus = rs::ddg::kernel_corpus(rs::ddg::vliw_model());
  rs::support::Table table({"kernel", "RS", "R", "unguarded ext cyclic?",
                            "guarded status", "guarded DAG?",
                            "positive circuit?"});
  int cyclic_unguarded = 0, produced = 0, bad_guarded = 0, skipped = 0;

  for (const auto& [name, dag] : corpus) {
    const rs::core::TypeContext ctx(dag, rs::ddg::kFloatReg);
    const auto rs_res = rs::core::rs_exact(ctx, rs::core::RsExactOptions{},
                                           rs::support::SolveContext(10));
    if (!rs_res.proven || rs_res.rs < 3) {
      ++skipped;
      continue;
    }
    const int R = rs_res.rs - 1;

    // Unguarded: plain minimum-makespan witness, then raw extension.
    rs::core::SrcSolver solver(ctx, R);
    const auto src = solver.minimize_makespan(rs::core::SrcOptions{},
                                              rs::support::SolveContext(10));
    std::string unguarded = "n/a";
    if (src.feasible) {
      const auto ext = rs::core::extend_by_schedule(ctx, src.sigma);
      unguarded = ext.is_dag ? "no" : "YES";
      if (!ext.is_dag) ++cyclic_unguarded;
    }

    // Guarded: the library's reduce_optimal (leaf filter = DAG check).
    rs::core::ReduceOptions ropts;
    ropts.rs_upper = rs_res.rs;
    const auto red = rs::core::reduce_optimal(ctx, R, ropts,
                                              rs::support::SolveContext(10));
    std::string status = "limit";
    bool dag_ok = true, no_pos_circuit = true;
    if (red.status == rs::core::ReduceStatus::Reduced) {
      status = "reduced";
      ++produced;
      dag_ok = rs::graph::is_dag(red.extended->graph());
      no_pos_circuit = !rs::graph::has_positive_circuit(red.extended->graph());
      if (!dag_ok || !no_pos_circuit) ++bad_guarded;
    } else if (red.status == rs::core::ReduceStatus::SpillNeeded) {
      status = "spill";
    }
    table.add_row({name, std::to_string(rs_res.rs), std::to_string(R),
                   unguarded, status, dag_ok ? "yes" : "NO",
                   no_pos_circuit ? "no" : "YES"});
  }

  std::puts("EXP-6: VLIW non-positive circuits during RS reduction (section 4)");
  std::puts("------------------------------------------------------------------");
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nunguarded witnesses with cyclic extensions: %d\n",
              cyclic_unguarded);
  std::printf("guarded reductions produced: %d, of which invalid: %d "
              "(must be 0)\n",
              produced, bad_guarded);
  std::printf("instances skipped (tiny RS or budget): %d\n", skipped);
  return bad_guarded == 0 ? 0 : 1;
}
