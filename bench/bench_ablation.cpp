// EXP-7 (ablation) — the design choices DESIGN.md calls out:
//
//  A. Section-3 model optimizations (redundant-arc elimination and
//     never-alive-pair elimination): effect on intLP size and B&B effort.
//     The paper presents them as noteworthy refinements; this quantifies
//     them on the reconstructed corpus.
//  B. Greedy-k refinement passes: phase 2 of the heuristic re-picks
//     killers while the antichain improves. How much optimality does each
//     pass buy, and what does it cost?
//
// Usage: bench_ablation [--quick]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/greedy_k.hpp"
#include "core/rs_exact.hpp"
#include "core/rs_ilp.hpp"
#include "ddg/generators.hpp"
#include "ddg/kernels.hpp"
#include "support/random.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

void ablate_ilp_optimizations(bool quick) {
  std::puts("A. section-3 intLP optimizations (on vs off)");
  rs::support::Table table({"instance", "vars on", "vars off", "cons on",
                            "cons off", "nodes on", "nodes off", "ms on",
                            "ms off"});
  rs::support::Rng rng(31);
  const auto model = rs::ddg::superscalar_model();
  std::vector<std::pair<std::string, rs::ddg::Ddg>> instances;
  for (const char* k : {"lin-ddot", "lin-dscal", "liv-loop5"}) {
    instances.emplace_back(k, rs::ddg::build_kernel(k, model));
  }
  for (int i = 0; i < (quick ? 2 : 4); ++i) {
    rs::ddg::RandomDagParams p;
    p.n_ops = 7;
    instances.emplace_back("rand7-" + std::to_string(i),
                           rs::ddg::random_dag(rng, model, p));
  }

  double speedup_sum = 0;
  int speedup_count = 0;
  for (const auto& [name, dag] : instances) {
    const rs::core::TypeContext ctx(dag, rs::ddg::kFloatReg);
    const double budget = quick ? 20 : 60;
    rs::core::RsIlpOptions on;
    rs::core::RsIlpOptions off = on;
    off.eliminate_redundant_arcs = false;
    off.eliminate_never_alive_pairs = false;

    rs::support::Timer t1;
    const auto r_on =
        rs::core::rs_ilp(ctx, on, rs::support::SolveContext(budget));
    const double ms_on = t1.millis();
    rs::support::Timer t2;
    const auto r_off =
        rs::core::rs_ilp(ctx, off, rs::support::SolveContext(budget));
    const double ms_off = t2.millis();
    if (r_on.proven && r_off.proven && r_on.rs != r_off.rs) {
      std::printf("!! optimization changed the optimum on %s\n", name.c_str());
    }
    if (r_on.proven && r_off.proven && ms_on > 0.1) {
      speedup_sum += ms_off / ms_on;
      ++speedup_count;
    }
    table.add_row({name, std::to_string(r_on.stats.variables),
                   std::to_string(r_off.stats.variables),
                   std::to_string(r_on.stats.constraints),
                   std::to_string(r_off.stats.constraints),
                   std::to_string(r_on.nodes), std::to_string(r_off.nodes),
                   rs::support::fmt_double(ms_on, 1),
                   rs::support::fmt_double(ms_off, 1)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  if (speedup_count) {
    std::printf("geometric-mean-free average solve speedup from the "
                "optimizations: %.2fx over %d instances\n\n",
                speedup_sum / speedup_count, speedup_count);
  }
}

void ablate_greedy_refinement(bool quick) {
  std::puts("B. greedy-k refinement passes (0 = pure greedy construction)");
  rs::support::Table table({"passes", "exact matches", "avg error",
                            "max error", "avg ms"});
  rs::support::Rng seed_rng(47);
  const auto model = rs::ddg::superscalar_model();
  std::vector<rs::ddg::Ddg> dags;
  for (const auto& [name, dag] : rs::ddg::kernel_corpus(model)) {
    dags.push_back(dag);
  }
  for (int i = 0; i < (quick ? 8 : 24); ++i) {
    rs::ddg::RandomDagParams p;
    p.n_ops = 10 + (i % 5);
    dags.push_back(rs::ddg::random_dag(seed_rng, model, p));
  }
  // Reference optima.
  std::vector<int> optimum(dags.size(), -1);
  for (std::size_t i = 0; i < dags.size(); ++i) {
    const rs::core::TypeContext ctx(dags[i], rs::ddg::kFloatReg);
    const auto r =
        rs::core::rs_exact(ctx, rs::core::RsExactOptions{},
                           rs::support::SolveContext(quick ? 5 : 20));
    if (r.proven) optimum[i] = r.rs;
  }

  for (const int passes : {0, 1, 2, 3, 5}) {
    int exact = 0, usable = 0, max_err = 0;
    double err_sum = 0, ms_sum = 0;
    for (std::size_t i = 0; i < dags.size(); ++i) {
      if (optimum[i] < 0) continue;
      const rs::core::TypeContext ctx(dags[i], rs::ddg::kFloatReg);
      rs::core::GreedyOptions gopts;
      gopts.refine_passes = passes;
      rs::support::Timer t;
      const auto est = rs::core::greedy_k(ctx, gopts);
      ms_sum += t.millis();
      ++usable;
      const int err = optimum[i] - est.rs;
      err_sum += err;
      max_err = std::max(max_err, err);
      if (err == 0) ++exact;
    }
    table.add_row({std::to_string(passes),
                   rs::support::fmt_percent(exact, usable),
                   rs::support::fmt_double(err_sum / std::max(usable, 1), 3),
                   std::to_string(max_err),
                   rs::support::fmt_double(ms_sum / std::max(usable, 1), 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) quick = true;
  }
  std::puts("EXP-7: ablations of the library's design choices");
  std::puts("=================================================");
  ablate_ilp_optimizations(quick);
  ablate_greedy_refinement(quick);
  return 0;
}
