// EXP-4 — Figure 2: RS reduction vs minimal register requirement.
//
// The paper's worked example: four value-producing operations (one with a
// long latency of 17, three with latency 1). The initial DAG has RS = 4.
//  (b) register *minimization* under the critical-path budget pins the
//      requirement to its minimum (2) with two serialization chains;
//  (c) RS *reduction* with 3 available registers adds strictly fewer arcs
//      and leaves the allocator the freedom to use 1..3 registers.
#include <cstdio>
#include <string>

#include "core/min_reg.hpp"
#include "core/reduce.hpp"
#include "core/rs_exact.hpp"
#include "ddg/builder.hpp"
#include "graph/paths.hpp"
#include "sched/lifetime.hpp"
#include "sched/schedule.hpp"

namespace {

/// Figure-2-shaped DAG: four independent values — a with the figure's
/// latency 17, b, c, d with latency 1 — each consumed by its own reader.
/// RS = 4 (all definitions can precede all reads); the long-latency a pins
/// the critical path, so serializing b/c/d is free in schedule length.
rs::ddg::Ddg figure2_dag() {
  rs::ddg::Ddg d(2, "figure2");
  using rs::ddg::OpClass;
  using rs::ddg::Operation;
  auto op = [&](const char* name, rs::ddg::Latency lat, bool writes) {
    Operation o;
    o.name = name;
    o.cls = lat > 1 ? OpClass::FpDiv : OpClass::FpAdd;
    o.latency = lat;
    const auto v = d.add_op(o);
    if (writes) d.mark_writes(v, rs::ddg::kFloatReg);
    return v;
  };
  const char* names[] = {"a", "b", "c", "d"};
  const rs::ddg::Latency lats[] = {17, 1, 1, 1};
  for (int i = 0; i < 4; ++i) {
    const auto v = op(names[i], lats[i], true);
    const auto r = op((std::string("r") + names[i]).c_str(), 1, false);
    d.add_flow(v, r, rs::ddg::kFloatReg, lats[i]);
  }
  return d.normalized();
}

}  // namespace

int main() {
  const rs::ddg::Ddg dag = figure2_dag();
  const rs::core::TypeContext ctx(dag, rs::ddg::kFloatReg);
  const auto cp = rs::graph::critical_path(dag.graph());

  std::puts("EXP-4: figure 2 — RS reduction vs minimal register need");
  std::puts("---------------------------------------------------------");

  // (a) the initial DAG.
  const auto rs_initial = rs::core::rs_exact(ctx);
  std::printf("(a) initial DAG:        RS = %d (paper: 4), CP = %lld\n",
              rs_initial.rs, static_cast<long long>(cp));

  // (b) minimization under the critical-path budget (footnote 4).
  rs::core::SrcOptions sopts;
  const auto min = rs::core::minimize_register_need(ctx, cp, sopts);
  const rs::core::TypeContext mctx(*min.extended, rs::ddg::kFloatReg);
  const auto rs_min = rs::core::rs_exact(mctx);
  std::printf("(b) minimization:       need = %d (paper: 2), arcs added = %d, "
              "CP = %lld\n",
              min.min_need, min.arcs_added,
              static_cast<long long>(min.critical_path));

  // (c) RS reduction with 3 available registers.
  rs::core::ReduceOptions ropts;
  ropts.rs_upper = rs_initial.rs;
  const auto red = rs::core::reduce_optimal(ctx, 3, ropts);
  const rs::core::TypeContext rctx(*red.extended, rs::ddg::kFloatReg);
  const auto rs_red = rs::core::rs_exact(rctx);
  std::printf("(c) RS reduction (R=3): RS = %d (paper: 3), arcs added = %d, "
              "CP = %lld\n",
              red.achieved_rs, red.arcs_added,
              static_cast<long long>(red.critical_path));

  // Allocator freedom: the range of register needs downstream schedules
  // can produce on each graph ("the final allocator would use 1, 2 or 3
  // registers ... for the latter only 1 or 2, which is more restrictive").
  // Unbudgeted (any schedule length): use a generous horizon.
  const auto horizon = rs::sched::worst_case_horizon(dag.graph());
  const auto min_b = rs::core::minimize_register_need(mctx, horizon, sopts);
  const auto min_c = rs::core::minimize_register_need(rctx, horizon, sopts);
  std::printf("\nallocator freedom after (b): %d..%d registers (paper: 1..2)\n",
              min_b.min_need, rs_min.rs);
  std::printf("allocator freedom after (c): %d..%d registers (paper: 1..3)\n",
              min_c.min_need, rs_red.rs);
  std::printf("\narcs added: minimization %d vs RS reduction %d (paper: "
              "reduction adds strictly fewer)\n",
              min.arcs_added, red.arcs_added);

  const bool shape_ok = rs_initial.rs == 4 && min.min_need == 2 &&
                        red.achieved_rs == 3 &&
                        red.arcs_added < min.arcs_added;
  std::printf("\nfigure-2 shape reproduced: %s\n", shape_ok ? "YES" : "NO");
  return shape_ok ? 0 : 1;
}
