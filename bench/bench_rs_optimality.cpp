// EXP-1 — Section 5, "RS computation": heuristic RS* vs optimal RS.
//
// Paper's claim: "the maximal empirical error is one register (in very few
// cases)". This binary regenerates the comparison on the reconstructed
// corpus and prints the per-instance table plus the error distribution.
//
// Usage: bench_rs_optimality [--quick] [--time-limit S] [--csv]
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "exp/harness.hpp"
#include "support/parse.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  bool quick = false, csv = false;
  double time_limit = 30.0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) quick = true;
    if (!std::strcmp(argv[i], "--csv")) csv = true;
    if (!std::strcmp(argv[i], "--time-limit") && i + 1 < argc) {
      try {
        time_limit =
            rs::support::parse_budget_seconds(argv[++i], "--time-limit");
      } catch (const rs::support::PreconditionError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    }
  }

  rs::exp::CorpusOptions copts;
  copts.random_count = quick ? 4 : 16;
  copts.random_sizes = quick ? std::vector<int>{8, 10} : std::vector<int>{8, 10, 12, 14};
  const auto corpus = rs::exp::standard_corpus(copts);

  rs::exp::RsSweepOptions opts;
  opts.exact_time_limit = quick ? 5.0 : time_limit;
  rs::support::Timer timer;
  const auto rows = rs::exp::compare_rs(corpus, opts);

  rs::support::Table table({"instance", "|V|", "|E|", "values", "RS* (heur)",
                            "RS (opt)", "err", "proven", "t_heur ms",
                            "t_opt ms"});
  std::map<int, int> error_histogram;
  std::size_t proven = 0, exact_matches = 0;
  int max_error = 0;
  for (const auto& r : rows) {
    table.add_row({r.name, std::to_string(r.n_ops), std::to_string(r.n_arcs),
                   std::to_string(r.n_values), std::to_string(r.rs_heuristic),
                   std::to_string(r.rs_exact),
                   r.proven ? std::to_string(r.error()) : "?",
                   r.proven ? "yes" : "budget",
                   rs::support::fmt_double(r.heuristic_ms, 2),
                   rs::support::fmt_double(r.exact_ms, 1)});
    if (!r.proven) continue;
    ++proven;
    ++error_histogram[r.error()];
    if (r.error() == 0) ++exact_matches;
    max_error = std::max(max_error, r.error());
  }

  std::puts("EXP-1: register saturation — heuristic vs optimal (section 5)");
  std::puts("--------------------------------------------------------------");
  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
  std::printf("\ninstances: %zu   proven optimal: %zu   wall: %.1fs\n",
              rows.size(), proven, timer.seconds());
  std::printf("heuristic exact on %s of proven instances\n",
              rs::support::fmt_percent(exact_matches, proven).c_str());
  for (const auto& [err, count] : error_histogram) {
    std::printf("  error = %d register(s): %s\n", err,
                rs::support::fmt_percent(count, proven).c_str());
  }
  std::printf("maximal empirical error: %d register(s)  (paper: 1, in very "
              "few cases)\n",
              max_error);
  return 0;
}
