// EXP-5 — Solve-time scaling (google-benchmark).
//
// Backs two of the paper's observations: exact solving is expensive
// ("from many seconds to many days" on CPLEX) while the heuristics stay
// polynomial, and the full figure-1 pipeline is cheap enough for a
// compiler pass when driven by the heuristics.
#include <benchmark/benchmark.h>

#include "core/greedy_k.hpp"
#include "core/reduce.hpp"
#include "core/rs_exact.hpp"
#include "core/rs_ilp.hpp"
#include "core/saturation.hpp"
#include "ddg/generators.hpp"
#include "ddg/kernels.hpp"
#include "graph/antichain.hpp"
#include "support/random.hpp"

namespace {

rs::ddg::Ddg make_dag(int n, std::uint64_t seed) {
  rs::support::Rng rng(seed);
  rs::ddg::RandomDagParams p;
  p.n_ops = n;
  return rs::ddg::random_dag(rng, rs::ddg::superscalar_model(), p);
}

void BM_GreedyK(benchmark::State& state) {
  const auto d = make_dag(static_cast<int>(state.range(0)), 1001);
  const rs::core::TypeContext ctx(d, rs::ddg::kFloatReg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::core::greedy_k(ctx).rs);
  }
}
BENCHMARK(BM_GreedyK)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_RsExactCombinatorial(benchmark::State& state) {
  const auto d = make_dag(static_cast<int>(state.range(0)), 1002);
  const rs::core::TypeContext ctx(d, rs::ddg::kFloatReg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rs::core::rs_exact(ctx, rs::core::RsExactOptions{},
                           rs::support::SolveContext(60))
            .rs);
  }
}
BENCHMARK(BM_RsExactCombinatorial)->Arg(8)->Arg(12)->Arg(16)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_RsIlp(benchmark::State& state) {
  const auto d = make_dag(static_cast<int>(state.range(0)), 1003);
  const rs::core::TypeContext ctx(d, rs::ddg::kFloatReg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::core::rs_ilp(ctx, rs::core::RsIlpOptions{},
                                              rs::support::SolveContext(60))
                                 .rs);
  }
}
BENCHMARK(BM_RsIlp)->Arg(5)->Arg(6)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_RsModelBuildOnly(benchmark::State& state) {
  const auto d = make_dag(static_cast<int>(state.range(0)), 1004);
  const rs::core::TypeContext ctx(d, rs::ddg::kFloatReg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::core::rs_model_stats(ctx).variables);
  }
}
BENCHMARK(BM_RsModelBuildOnly)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_MaximumAntichain(benchmark::State& state) {
  const auto d = make_dag(static_cast<int>(state.range(0)), 1005);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rs::graph::maximum_antichain_of_dag(d.graph()).size);
  }
}
BENCHMARK(BM_MaximumAntichain)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_ReduceGreedy(benchmark::State& state) {
  const auto d = make_dag(static_cast<int>(state.range(0)), 1006);
  const rs::core::TypeContext ctx(d, rs::ddg::kFloatReg);
  const int rs_value = rs::core::greedy_k(ctx).rs;
  if (rs_value < 3) {
    state.SkipWithError("instance too small");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rs::core::reduce_greedy(ctx, rs_value - 1).status);
  }
}
BENCHMARK(BM_ReduceGreedy)->Arg(12)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_FullPipelineHeuristic(benchmark::State& state) {
  // The figure-1 pass as a compiler would run it: heuristic engines,
  // verification on, realistic register files (16 int / 16 float).
  const auto d = make_dag(static_cast<int>(state.range(0)), 1007);
  rs::core::PipelineOptions opts;
  opts.analyze.engine = rs::core::RsEngine::Greedy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rs::core::ensure_limits(d, {16, 16}, opts).success);
  }
}
BENCHMARK(BM_FullPipelineHeuristic)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_KernelAnalysis(benchmark::State& state) {
  // Exact RS over the whole reconstructed kernel corpus (per iteration).
  const auto corpus = rs::ddg::kernel_corpus(rs::ddg::superscalar_model());
  for (auto _ : state) {
    int total = 0;
    for (const auto& [name, dag] : corpus) {
      const rs::core::TypeContext ctx(dag, rs::ddg::kFloatReg);
      total += rs::core::rs_exact(ctx, rs::core::RsExactOptions{},
                                  rs::support::SolveContext(60))
                   .rs;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_KernelAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
