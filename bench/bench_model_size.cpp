// EXP-3 — Section 3's size claim: the RS intLP needs O(n^2) integer
// variables and O(m + n^2) constraints, "the lowest in the literature".
//
// This binary measures the built model across growing DAGs, fits the
// quadratic envelope, and compares against the classical *time-indexed*
// register-pressure formulation (variables x_{u,t} for t up to the horizon
// T, as in the integer-programming code-generation line of work the paper
// cites), whose size is O(n*T) with T itself O(sum of latencies).
//
// Usage: bench_model_size [--csv]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/rs_ilp.hpp"
#include "ddg/generators.hpp"
#include "ddg/kernels.hpp"
#include "sched/schedule.hpp"
#include "support/random.hpp"
#include "support/table.hpp"

namespace {

struct TimeIndexedSize {
  long variables;
  long constraints;
};

/// Size of the classical time-indexed model for the same question:
/// one binary x_{u,t} per (op, cycle), one assignment row per op, one
/// precedence row per (arc, cycle), one liveness row per (value, cycle)
/// plus one max-live row per cycle.
TimeIndexedSize time_indexed_size(const rs::ddg::Ddg& d, rs::ddg::RegType t) {
  const long T = static_cast<long>(rs::sched::worst_case_horizon(d.graph()));
  const long n = d.op_count();
  const long m = d.graph().edge_count();
  const long nv = static_cast<long>(d.values_of_type(t).size());
  TimeIndexedSize s;
  s.variables = n * T + nv * T;          // issue slots + liveness indicators
  s.constraints = n + m * T + nv * T + T;  // assign + precedence + live + cap
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--csv")) csv = true;
  }
  rs::support::Table table({"instance", "n", "m", "values", "int vars",
                            "constraints", "vars/n^2", "cons/(m+n^2)",
                            "time-indexed vars", "time-indexed cons"});

  double worst_var_ratio = 0, worst_con_ratio = 0;
  long saved_vs_time_indexed = 0, total = 0;

  auto measure = [&](const std::string& name, const rs::ddg::Ddg& d) {
    const rs::core::TypeContext ctx(d, rs::ddg::kFloatReg);
    const rs::core::RsIlpStats s = rs::core::rs_model_stats(ctx);
    const double n2 = static_cast<double>(s.n_nodes) * s.n_nodes;
    const double var_ratio = s.integer_variables / n2;
    const double con_ratio = s.constraints / (s.m_arcs + n2);
    worst_var_ratio = std::max(worst_var_ratio, var_ratio);
    worst_con_ratio = std::max(worst_con_ratio, con_ratio);
    const TimeIndexedSize ti = time_indexed_size(d, rs::ddg::kFloatReg);
    ++total;
    if (s.integer_variables < ti.variables && s.constraints < ti.constraints) {
      ++saved_vs_time_indexed;
    }
    table.add_row({name, std::to_string(s.n_nodes), std::to_string(s.m_arcs),
                   std::to_string(s.n_values),
                   std::to_string(s.integer_variables),
                   std::to_string(s.constraints),
                   rs::support::fmt_double(var_ratio, 3),
                   rs::support::fmt_double(con_ratio, 3),
                   std::to_string(ti.variables), std::to_string(ti.constraints)});
  };

  for (const auto& [name, dag] :
       rs::ddg::kernel_corpus(rs::ddg::superscalar_model())) {
    measure(name, dag);
  }
  rs::support::Rng rng(7);
  const auto model = rs::ddg::superscalar_model();
  for (const int n : {16, 24, 32, 48, 64, 96, 128}) {
    rs::ddg::RandomDagParams p;
    p.n_ops = n;
    measure("rand-" + std::to_string(n), rs::ddg::random_dag(rng, model, p));
  }

  std::puts("EXP-3: section-3 intLP size vs the O(n^2)/O(m+n^2) claim");
  std::puts("---------------------------------------------------------");
  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
  std::printf("\nmax int-vars / n^2 ratio:        %.3f  (bounded => O(n^2))\n",
              worst_var_ratio);
  std::printf("max constraints / (m+n^2) ratio: %.3f  (bounded => O(m+n^2))\n",
              worst_con_ratio);
  std::printf("smaller than the time-indexed formulation on %ld / %ld "
              "instances\n",
              saved_vs_time_indexed, total);
  return 0;
}
