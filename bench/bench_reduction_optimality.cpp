// EXP-2 — Section 5, RS reduction category breakdown.
//
// Paper's reported distribution over its corpus:
//   (i)(a)  RS = RS*, ILP = ILP*   72.22 %
//   (i)(b)  RS = RS*, ILP < ILP*   18.5  %
//   (i)(c)  RS = RS*, ILP > ILP*   impossible
//   (ii)(a) RS > RS*, ILP = ILP*    4.63 %
//   (ii)(b) RS > RS*, ILP < ILP*   < 1 %
//   (ii)(c) RS > RS*, ILP > ILP*    3.7 %
//   (iii)   RS < RS*               impossible
// Exact percentages depend on the corpus (the authors' DDG files were not
// published); the *shape* to reproduce: (i)(a) dominates, the impossible
// cells are empty, (ii)(b) is rare.
//
// Usage: bench_reduction_optimality [--quick] [--time-limit S] [--csv]
#include <cstdio>
#include <cstring>
#include <string>

#include "exp/harness.hpp"
#include "support/parse.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  bool quick = false, csv = false;
  double time_limit = 15.0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) quick = true;
    if (!std::strcmp(argv[i], "--csv")) csv = true;
    if (!std::strcmp(argv[i], "--time-limit") && i + 1 < argc) {
      try {
        time_limit =
            rs::support::parse_budget_seconds(argv[++i], "--time-limit");
      } catch (const rs::support::PreconditionError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    }
  }

  rs::exp::CorpusOptions copts;
  copts.random_count = quick ? 3 : 10;
  copts.random_sizes = quick ? std::vector<int>{8, 10} : std::vector<int>{8, 10, 12};
  const auto corpus = rs::exp::standard_corpus(copts);

  rs::exp::ReductionSweepOptions opts;
  opts.r_offsets = quick ? std::vector<int>{1} : std::vector<int>{1, 2};
  opts.time_limit = quick ? 5.0 : time_limit;
  rs::support::Timer timer;
  const auto rows = rs::exp::compare_reduction(corpus, opts);

  rs::support::Table table({"instance", "R", "RS(opt)", "RS*(heur)",
                            "ILP(opt)", "ILP*(heur)", "arcs opt", "arcs heur",
                            "category"});
  for (const auto& r : rows) {
    if (!r.usable) {
      table.add_row({r.name, std::to_string(r.R), "-", "-", "-", "-", "-", "-",
                     "skipped: " + r.skip_reason});
      continue;
    }
    table.add_row({r.name, std::to_string(r.R), std::to_string(r.rs_optimal),
                   std::to_string(r.rs_heuristic),
                   std::to_string(r.ilp_optimal),
                   std::to_string(r.ilp_heuristic),
                   std::to_string(r.arcs_optimal),
                   std::to_string(r.arcs_heuristic),
                   rs::exp::category_label(r.category)});
  }

  std::puts("EXP-2: RS reduction — optimal vs heuristic (section 5 taxonomy)");
  std::puts("----------------------------------------------------------------");
  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);

  const rs::exp::CategoryBreakdown sum = rs::exp::summarize(rows);
  std::printf("\n(instance, R) pairs: %zu   usable: %zu   skipped: %zu   "
              "wall: %.1fs\n",
              rows.size(), sum.usable, sum.skipped, timer.seconds());
  struct PaperRef {
    rs::exp::ReductionCategory cat;
    const char* paper;
  };
  const PaperRef refs[] = {
      {rs::exp::ReductionCategory::OptimalRsOptimalIlp, "72.22%"},
      {rs::exp::ReductionCategory::OptimalRsSubIlp, "18.5%"},
      {rs::exp::ReductionCategory::OptimalRsSuperIlp, "impossible"},
      {rs::exp::ReductionCategory::SubRsOptimalIlp, "4.63%"},
      {rs::exp::ReductionCategory::SubRsSubIlp, "<1%"},
      {rs::exp::ReductionCategory::SubRsSuperIlp, "3.7%"},
      {rs::exp::ReductionCategory::HeuristicAboveOptimal, "impossible"},
  };
  std::puts("\ncategory                     measured    paper");
  for (const auto& ref : refs) {
    std::printf("%-26s  %8.2f%%    %s\n", rs::exp::category_label(ref.cat),
                sum.percent(ref.cat), ref.paper);
  }
  return 0;
}
