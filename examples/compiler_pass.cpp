// The full early-register-pressure pipeline of figure 1, end to end, on a
// real loop body (Livermore loop 7):
//
//   DDG -> RS analysis -> RS reduction -> register-blind list scheduling
//       -> linear-scan register allocation
//
// The punchline the paper argues for: after the RS pass, the scheduler can
// chase ILP without ever thinking about registers, and the allocator is
// still guaranteed to succeed without spill code.
#include <cstdio>

#include "core/saturation.hpp"
#include "ddg/kernels.hpp"
#include "graph/paths.hpp"
#include "sched/lifetime.hpp"
#include "sched/list_sched.hpp"

int main() {
  using namespace rs;

  const ddg::Ddg dag = ddg::liv_loop7(ddg::superscalar_model());
  std::printf("kernel: %s — %d ops, %d arcs, critical path %lld\n",
              dag.name().c_str(), dag.op_count(), dag.graph().edge_count(),
              static_cast<long long>(graph::critical_path(dag.graph())));

  // Target machine: 4-issue, 12 int / 10 float registers.
  const std::vector<int> regfile = {12, 10};
  sched::Resources machine;
  machine.issue_width = 4;

  // --- RS analysis -------------------------------------------------------
  const core::SaturationReport rs_report = core::analyze(dag);
  for (const auto& t : rs_report.per_type) {
    std::printf("RS(type %d) = %d vs %d available -> %s\n", t.type, t.rs,
                regfile[t.type],
                t.rs <= regfile[t.type] ? "free" : "must reduce");
  }

  // --- RS reduction where needed ----------------------------------------
  const core::PipelineResult safe = core::ensure_limits(dag, regfile);
  if (!safe.success) {
    std::printf("pipeline reports: %s\n", safe.note.c_str());
    return 1;
  }
  for (ddg::RegType t = 0; t < dag.type_count(); ++t) {
    const auto& r = safe.per_type[t];
    if (r.arcs_added > 0) {
      std::printf("type %d: %d serialization arc(s), ILP loss %lld cycle(s)\n",
                  t, r.arcs_added, static_cast<long long>(r.ilp_loss()));
    }
  }

  // --- register-blind scheduling ----------------------------------------
  const sched::Schedule sigma = sched::list_schedule(safe.out, machine);
  std::printf("\nlist schedule makespan: %lld cycles\n",
              static_cast<long long>(sched::makespan(safe.out, sigma)));

  // --- allocation (guaranteed to fit) ------------------------------------
  for (ddg::RegType t = 0; t < dag.type_count(); ++t) {
    const int need = sched::register_need(safe.out, t, sigma);
    const sched::Allocation alloc = sched::allocate(safe.out, t, sigma);
    std::printf("type %d: MAXLIVE %d, allocated %d register(s), budget %d %s\n",
                t, need, alloc.registers_used, regfile[t],
                alloc.registers_used <= regfile[t] ? "[ok]" : "[BUG]");
    if (alloc.registers_used > regfile[t]) return 1;
  }

  std::puts("\nno spill code needed — the RS pass made register constraints "
            "vanish before scheduling, as the paper promises.");
  return 0;
}
