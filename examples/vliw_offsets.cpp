// Visible read/write offsets (VLIW/EPIC) and why they matter — section 2's
// generalized machine model and section 4's circuit caveat, on one kernel.
//
// Superscalar targets read/write registers "at" the issue cycle; VLIW/EPIC
// pipelines expose the real timing: operands are read at issue, results
// are written at the end of the pipeline (delta_w = latency - 1). That
// shifts every lifetime and changes the register saturation; it also makes
// RS-reduction arcs carry negative latencies, so naive reductions can
// produce graphs with no topological sort.
#include <cstdio>

#include "core/reduce.hpp"
#include "core/rs_exact.hpp"
#include "core/src_solver.hpp"
#include "ddg/kernels.hpp"
#include "graph/topo.hpp"
#include "sched/lifetime.hpp"
#include "sched/schedule.hpp"

int main() {
  using namespace rs;

  for (const auto& model : {ddg::superscalar_model(), ddg::vliw_model()}) {
    const ddg::Ddg dag = ddg::liv_loop1(model);
    const core::TypeContext ctx(dag, ddg::kFloatReg);
    const auto rs_res = core::rs_exact(ctx);
    std::printf("%-11s: float RS = %d (%s)\n", model.name().c_str(),
                rs_res.rs, rs_res.proven ? "proven" : "estimate");

    // Show one value's lifetime under ASAP to make the offsets concrete.
    const sched::Schedule asap = sched::asap(dag);
    const auto lts = sched::lifetimes(dag, ddg::kFloatReg, asap);
    for (const auto& lt : lts) {
      if (dag.op(lt.value).name == "ld.y") {
        std::printf("             ld.y lifetime under ASAP: ]%lld, %lld] "
                    "(dr=%lld, dw=%lld)\n",
                    static_cast<long long>(lt.def),
                    static_cast<long long>(lt.kill),
                    static_cast<long long>(dag.op(lt.value).delta_r),
                    static_cast<long long>(dag.op(lt.value).delta_w));
      }
    }
  }

  // The section-4 caveat, demonstrated: take a minimum-makespan witness on
  // the VLIW variant WITHOUT the topological-sort guard and inspect its
  // Theorem-4.2 extension.
  const ddg::Ddg vdag = ddg::liv_loop1(ddg::vliw_model());
  const core::TypeContext vctx(vdag, ddg::kFloatReg);
  const auto vrs = core::rs_exact(vctx);
  const int R = vrs.rs - 1;
  core::SrcSolver solver(vctx, R);
  const auto unguarded =
      solver.minimize_makespan(core::SrcOptions{}, support::SolveContext(10));
  if (unguarded.feasible) {
    const auto ext = core::extend_by_schedule(vctx, unguarded.sigma);
    std::printf("\nunguarded reduction witness (R=%d): extension has %d extra "
                "arcs, DAG property %s\n",
                R, ext.arcs_added, ext.is_dag ? "kept" : "LOST (circuit!)");
    if (!ext.is_dag) {
      std::puts("-> exactly the situation section 4 eliminates with the "
                "topological-sort constraints;");
    }
  }

  // The library's reduce_optimal carries the guard built in.
  core::ReduceOptions ropts;
  ropts.rs_upper = vrs.rs;
  const auto guarded =
      core::reduce_optimal(vctx, R, ropts, support::SolveContext(30));
  if (guarded.status == core::ReduceStatus::Reduced) {
    std::printf("guarded reduction: RS -> %d, arcs %d, DAG kept: %s\n",
                guarded.achieved_rs, guarded.arcs_added,
                graph::is_dag(guarded.extended->graph()) ? "yes" : "no");
  } else {
    std::puts("guarded reduction hit its budget — the exact VLIW problem is "
              "the paper's 'many days' regime; the heuristic pipeline "
              "(ensure_limits) is the practical path.");
  }
  return 0;
}
