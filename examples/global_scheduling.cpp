// Global (acyclic CFG) register saturation — the section-6 extension.
//
// Builds a small if/else program, runs per-block RS analysis with entry
// and exit values, and reduces every block against a register file with
// the one-register move margin the paper recommends for global allocation.
#include <cstdio>

#include "cfg/cfg.hpp"
#include "cfg/global_rs.hpp"
#include "core/rs_exact.hpp"
#include "sched/lifetime.hpp"
#include "sched/list_sched.hpp"

int main() {
  using namespace rs;
  using ddg::OpClass;

  // float r = dot(a, b, n-ish unrolled twice); if (r > t) r = r*s; else
  // r = r+s; store r — with several values crossing block boundaries.
  cfg::Program p(ddg::superscalar_model());
  const int head = p.add_block("head");
  const int hot = p.add_block("hot");
  const int cold = p.add_block("cold");
  const int tail = p.add_block("tail");
  p.add_edge(head, hot);
  p.add_edge(head, cold);
  p.add_edge(hot, tail);
  p.add_edge(cold, tail);

  p.def(head, "a0", OpClass::Load, ddg::kFloatReg, {"ap"});
  p.def(head, "b0", OpClass::Load, ddg::kFloatReg, {"bp"});
  p.def(head, "a1", OpClass::Load, ddg::kFloatReg, {"ap"});
  p.def(head, "b1", OpClass::Load, ddg::kFloatReg, {"bp"});
  p.def(head, "m0", OpClass::FpMul, ddg::kFloatReg, {"a0", "b0"});
  p.def(head, "m1", OpClass::FpMul, ddg::kFloatReg, {"a1", "b1"});
  p.def(head, "r", OpClass::FpAdd, ddg::kFloatReg, {"m0", "m1"});
  p.def(head, "s", OpClass::Load, ddg::kFloatReg, {"sp"});
  p.use(head, OpClass::Branchy, {"r", "s"});

  p.def(hot, "rh", OpClass::FpMul, ddg::kFloatReg, {"r", "s"});
  p.use(hot, OpClass::Store, {"rh", "ap"});
  p.def(cold, "rc", OpClass::FpAdd, ddg::kFloatReg, {"r", "s"});
  p.use(cold, OpClass::Store, {"rc", "ap"});
  p.use(tail, OpClass::Store, {"r", "bp"});  // r live across both branches

  const cfg::Cfg graph = p.build();

  // Liveness view.
  for (int b = 0; b < graph.block_count(); ++b) {
    const cfg::Block& blk = graph.block(b);
    std::printf("%-5s live-in:", blk.name.c_str());
    for (const auto& v : blk.live_in) std::printf(" %s", v.c_str());
    std::printf("  | live-out:");
    for (const auto& v : blk.live_out) std::printf(" %s", v.c_str());
    std::puts("");
  }

  // Global RS per type = max over expanded blocks.
  const cfg::GlobalReport report = cfg::analyze(graph);
  std::puts("\nper-block float RS (entry/exit values included):");
  for (const auto& bs : report.blocks) {
    std::printf("  %-5s RS = %d\n", bs.block.c_str(),
                bs.per_type[ddg::kFloatReg].rs);
  }
  std::printf("global RS: int %d, float %d\n",
              report.global_rs[ddg::kIntReg],
              report.global_rs[ddg::kFloatReg]);

  // Reduce against a tight file with the move margin (section 6: global
  // allocation may need MAXLIVE+1, so target R-1 per block).
  const std::vector<int> regfile = {8, report.global_rs[ddg::kFloatReg]};
  const cfg::GlobalReduceResult safe = cfg::ensure_limits(graph, regfile, 1);
  if (!safe.success) {
    std::printf("reduction failed: %s\n", safe.note.c_str());
    return 1;
  }
  std::printf("\nafter reduction (margin 1): every block fits %d float "
              "registers:\n",
              regfile[ddg::kFloatReg] - 1);
  for (int b = 0; b < graph.block_count(); ++b) {
    const core::TypeContext ctx(safe.blocks[b], ddg::kFloatReg);
    const auto rs_after = core::rs_exact(ctx);
    std::printf("  %-5s RS = %d, +%d arc(s)\n", graph.block(b).name.c_str(),
                rs_after.rs, safe.details[b].per_type[ddg::kFloatReg].arcs_added);
  }
  std::puts("\neach block can now be scheduled independently, register-blind.");
  return 0;
}
