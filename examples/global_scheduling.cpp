// Global (acyclic CFG) register saturation — the section-6 extension.
//
// Loads a small if/else program from its committed .prog file (format:
// src/cfg/io.hpp — float r = dot(a, b) unrolled twice; if (r > t) r = r*s;
// else r = r+s; store r, with several values crossing block boundaries),
// runs per-block RS analysis with entry and exit values, and reduces every
// block against a register file with the one-register move margin the
// paper recommends for global allocation.
//
// Usage: global_scheduling [program.prog]   (default: examples/dotcond.prog)
#include <cstdio>

#include "cfg/cfg.hpp"
#include "cfg/global_rs.hpp"
#include "cfg/io.hpp"
#include "core/rs_exact.hpp"
#include "sched/lifetime.hpp"
#include "sched/list_sched.hpp"
#include "support/fs.hpp"

int main(int argc, char** argv) {
  using namespace rs;

  const std::string path = argc > 1 ? argv[1] : "examples/dotcond.prog";
  std::string text;
  if (!support::read_file_to_string(path, &text)) {
    std::fprintf(stderr,
                 "cannot open %s (run from the repository root, or pass a "
                 ".prog path)\n",
                 path.c_str());
    return 1;
  }
  const cfg::Cfg graph = cfg::from_text(text, ddg::superscalar_model());
  std::printf("%s: %d blocks\n\n", graph.name().c_str(), graph.block_count());

  // Liveness view.
  for (int b = 0; b < graph.block_count(); ++b) {
    const cfg::Block& blk = graph.block(b);
    std::printf("%-5s live-in:", blk.name.c_str());
    for (const auto& v : blk.live_in) std::printf(" %s", v.c_str());
    std::printf("  | live-out:");
    for (const auto& v : blk.live_out) std::printf(" %s", v.c_str());
    std::puts("");
  }

  // Global RS per type = max over expanded blocks.
  const cfg::GlobalReport report = cfg::analyze(graph);
  std::puts("\nper-block float RS (entry/exit values included):");
  for (const auto& bs : report.blocks) {
    std::printf("  %-5s RS = %d\n", bs.block.c_str(),
                bs.per_type[ddg::kFloatReg].rs);
  }
  std::printf("global RS: int %d, float %d\n",
              report.global_rs[ddg::kIntReg],
              report.global_rs[ddg::kFloatReg]);

  // Reduce against a tight file with the move margin (section 6: global
  // allocation may need MAXLIVE+1, so target R-1 per block).
  const std::vector<int> regfile = {8, report.global_rs[ddg::kFloatReg]};
  const cfg::GlobalReduceResult safe = cfg::ensure_limits(graph, regfile, 1);
  if (!safe.success) {
    std::printf("reduction failed: %s\n", safe.note.c_str());
    return 1;
  }
  std::printf("\nafter reduction (margin 1): every block fits %d float "
              "registers:\n",
              regfile[ddg::kFloatReg] - 1);
  for (int b = 0; b < graph.block_count(); ++b) {
    const core::TypeContext ctx(safe.blocks[b], ddg::kFloatReg);
    const auto rs_after = core::rs_exact(ctx);
    std::printf("  %-5s RS = %d, +%d arc(s)\n", graph.block(b).name.c_str(),
                rs_after.rs, safe.details[b].per_type[ddg::kFloatReg].arcs_added);
  }
  std::puts("\neach block can now be scheduled independently, register-blind.");
  return 0;
}
