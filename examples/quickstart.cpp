// Quickstart: build a small DDG, compute its register saturation, reduce
// it below a register budget, and confirm the result.
//
//   $ ./examples/quickstart
//
// Walks through the library's three core calls:
//   1. rs::core::analyze        — RS per register type (figure-1 left box)
//   2. rs::core::ensure_limits  — RS reduction when a type exceeds its file
//   3. re-analysis of the output — the budget now provably holds.
#include <cstdio>

#include "core/saturation.hpp"
#include "ddg/builder.hpp"
#include "ddg/machine.hpp"

int main() {
  using namespace rs;

  // A toy loop body:  s += a[i]*b[i];  t += a[i]*a[i];   (two dot products
  // sharing one stream) — written with the kernel builder.
  ddg::KernelBuilder b(ddg::superscalar_model(), "quickstart");
  const auto ap = b.live_in(ddg::kIntReg, "ap");
  const auto bp = b.live_in(ddg::kIntReg, "bp");
  const auto s_in = b.live_in(ddg::kFloatReg, "s");
  const auto t_in = b.live_in(ddg::kFloatReg, "t");
  const auto la = b.fload("ld.a", ap);
  const auto lb = b.fload("ld.b", bp);
  const auto m1 = b.fmul("a*b", la, lb);
  const auto m2 = b.fmul("a*a", la, la);
  b.fadd("s.out", s_in, m1);
  b.fadd("t.out", t_in, m2);
  b.iadd("ap.out", ap);
  b.iadd("bp.out", bp);
  const ddg::Ddg dag = b.build();  // validated + normalized (⊥ added)

  std::printf("DDG '%s': %d ops, %d arcs\n", dag.name().c_str(),
              dag.op_count(), dag.graph().edge_count());

  // 1. Register saturation: the worst register pressure ANY schedule of
  //    this DAG can produce, per register type.
  const core::SaturationReport report = core::analyze(dag);
  for (const auto& t : report.per_type) {
    std::printf("type %d: %d values, RS = %d (%s)\n", t.type, t.value_count,
                t.rs, t.proven ? "proven optimal" : "witnessed estimate");
  }

  // 2. Suppose the target has plenty of int registers but only
  //    RS(float)-1 float registers: reduce the float saturation.
  const int float_budget = report.of(ddg::kFloatReg).rs - 1;
  std::printf("\nreducing float RS below %d ...\n", float_budget);
  const core::PipelineResult out =
      core::ensure_limits(dag, {32, float_budget});
  if (!out.success) {
    std::printf("reduction failed: %s\n", out.note.c_str());
    return 1;
  }
  const auto& red = out.per_type[ddg::kFloatReg];
  std::printf("added %d serial arc(s); critical path %lld -> %lld\n",
              red.arcs_added, static_cast<long long>(red.original_cp),
              static_cast<long long>(red.critical_path));

  // 3. The output DDG is register-safe: any schedule now fits the budget.
  const core::SaturationReport after = core::analyze(out.out);
  std::printf("float RS after reduction: %d (budget %d) — the scheduler is "
              "now free of register constraints\n",
              after.of(ddg::kFloatReg).rs, float_budget);
  return 0;
}
