// Survey tool: print the reconstructed kernel corpus with per-kernel
// register-pressure facts, optionally dumping one kernel as DOT or as the
// text DDG format.
//
//   $ ./examples/corpus_report                 # table over the corpus
//   $ ./examples/corpus_report --dot lin-ddot  # Graphviz of one kernel
//   $ ./examples/corpus_report --text fir8     # text DDG of one kernel
#include <cstdio>
#include <cstring>
#include <string>

#include "core/greedy_k.hpp"
#include "core/rs_exact.hpp"
#include "ddg/io.hpp"
#include "ddg/kernels.hpp"
#include "graph/paths.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rs;

  if (argc == 3 &&
      (!std::strcmp(argv[1], "--dot") || !std::strcmp(argv[1], "--text"))) {
    const ddg::Ddg dag = ddg::build_kernel(argv[2], ddg::superscalar_model());
    std::fputs(!std::strcmp(argv[1], "--dot") ? dag.to_dot().c_str()
                                              : ddg::to_text(dag).c_str(),
               stdout);
    return 0;
  }

  support::Table table({"kernel", "model", "ops", "arcs", "fvalues", "CP",
                        "RS* (greedy)", "RS (exact)", "proven"});
  for (const auto& model : {ddg::superscalar_model(), ddg::vliw_model()}) {
    for (const auto& [name, dag] : ddg::kernel_corpus(model)) {
      const core::TypeContext ctx(dag, ddg::kFloatReg);
      const core::RsEstimate greedy = core::greedy_k(ctx);
      const core::RsExactResult exact = core::rs_exact(
          ctx, core::RsExactOptions{}, support::SolveContext(20));
      table.add_row({name, model.name(), std::to_string(dag.op_count()),
                     std::to_string(dag.graph().edge_count()),
                     std::to_string(ctx.value_count()),
                     std::to_string(graph::critical_path(dag.graph())),
                     std::to_string(greedy.rs), std::to_string(exact.rs),
                     exact.proven ? "yes" : "budget"});
    }
  }
  std::puts("reconstructed benchmark corpus (see DESIGN.md substitution 2)");
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\ntip: --dot <kernel> or --text <kernel> dumps one DDG.");
  return 0;
}
